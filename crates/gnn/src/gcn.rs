//! Two-layer graph convolutional network (Kipf & Welling, 2017).

use rand::rngs::StdRng;
use ses_tensor::{init, Matrix, Param, Tape, Var};

use crate::adjview::AdjView;
use crate::encoder::{restore_params, snapshot_params, Encoder, EncoderOutput, ForwardCtx};

/// `Z = Â σ(Â X W₁ + b₁) W₂ + b₂` with `Â = D^{-1/2}(A+I)D^{-1/2}`,
/// optionally re-weighted per edge by a mask.
#[derive(Debug, Clone)]
pub struct Gcn {
    w1: Param,
    b1: Param,
    /// Optional middle layer (hidden → hidden) for 3-layer GCNs — structural
    /// tasks like BAShapes need a 3-hop receptive field.
    w_mid: Option<(Param, Param)>,
    w2: Param,
    b2: Param,
    hidden: usize,
    out: usize,
    dropout: f32,
}

impl Gcn {
    /// Creates a two-layer GCN with Xavier-initialised weights.
    pub fn new(in_dim: usize, hidden: usize, out: usize, rng: &mut StdRng) -> Self {
        Self {
            w1: Param::new(init::xavier_uniform(in_dim, hidden, rng)),
            b1: Param::new(Matrix::zeros(1, hidden)),
            w_mid: None,
            w2: Param::new(init::xavier_uniform(hidden, out, rng)),
            b2: Param::new(Matrix::zeros(1, out)),
            hidden,
            out,
            dropout: 0.5,
        }
    }

    /// Creates a three-layer GCN (hidden → hidden middle convolution).
    pub fn three_layer(in_dim: usize, hidden: usize, out: usize, rng: &mut StdRng) -> Self {
        let mut g = Self::new(in_dim, hidden, out, rng);
        g.w_mid = Some((
            Param::new(init::xavier_uniform(hidden, hidden, rng)),
            Param::new(Matrix::zeros(1, hidden)),
        ));
        g
    }

    /// Sets the dropout probability applied to the hidden layer (default 0.5).
    pub fn with_dropout(mut self, p: f32) -> Self {
        self.dropout = p;
        self
    }

    /// Records the (possibly masked) normalised edge values on the tape.
    fn edge_values(tape: &mut Tape, adj: &AdjView, edge_mask: Option<Var>) -> Var {
        let norm = tape.constant(Matrix::col_vec(adj.sym_norm()));
        match edge_mask {
            Some(m) => tape.mul(norm, m),
            None => norm,
        }
    }
}

impl Encoder for Gcn {
    fn forward(&self, ctx: &mut ForwardCtx<'_>) -> EncoderOutput {
        let tape = &mut *ctx.tape;
        let w1 = self.w1.watch(tape);
        let b1 = self.b1.watch(tape);
        let w2 = self.w2.watch(tape);
        let b2 = self.b2.watch(tape);
        let mid = self
            .w_mid
            .as_ref()
            .map(|(w, b)| (w.watch(tape), b.watch(tape)));
        let vals = Self::edge_values(tape, ctx.adj, ctx.edge_mask);

        let xw = tape.matmul(ctx.x, w1);
        let agg = tape.spmm(ctx.adj.structure().clone(), vals, xw);
        let pre = tape.add_row_broadcast(agg, b1);
        let mut hidden = tape.relu(pre);

        if let Some((wm, bm)) = mid {
            let hw = tape.matmul(hidden, wm);
            let aggm = tape.spmm(ctx.adj.structure().clone(), vals, hw);
            let prem = tape.add_row_broadcast(aggm, bm);
            hidden = tape.relu(prem);
        }

        let h = if ctx.train && self.dropout > 0.0 {
            let mask =
                ses_tensor::dropout_mask(ctx.adj.n_nodes() * self.hidden, self.dropout, ctx.rng);
            tape.dropout(hidden, mask)
        } else {
            hidden
        };

        let hw = tape.matmul(h, w2);
        let agg2 = tape.spmm(ctx.adj.structure().clone(), vals, hw);
        let logits = tape.add_row_broadcast(agg2, b2);

        let mut param_vars = vec![w1, b1, w2, b2];
        if let Some((wm, bm)) = mid {
            param_vars.push(wm);
            param_vars.push(bm);
        }
        EncoderOutput {
            hidden,
            logits,
            param_vars,
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.w1, &mut self.b1, &mut self.w2, &mut self.b2];
        if let Some((w, b)) = &mut self.w_mid {
            v.push(w);
            v.push(b);
        }
        v
    }

    fn param_values(&self) -> Vec<Matrix> {
        let mut refs = vec![&self.w1, &self.b1, &self.w2, &self.b2];
        if let Some((w, b)) = &self.w_mid {
            refs.push(w);
            refs.push(b);
        }
        snapshot_params(&refs)
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        restore_params(&mut self.params_mut(), snapshot);
    }

    fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn out_dim(&self) -> usize {
        self.out
    }

    fn name(&self) -> &'static str {
        "GCN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use ses_graph::Graph;

    fn setup() -> (Graph, AdjView, Gcn, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::new(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            Matrix::from_vec(4, 3, (0..12).map(|x| x as f32 * 0.1).collect()),
            vec![0, 0, 1, 1],
        );
        let adj = AdjView::of_graph(&g);
        let gcn = Gcn::new(3, 8, 2, &mut rng);
        (g, adj, gcn, rng)
    }

    #[test]
    fn forward_shapes() {
        let (g, adj, gcn, mut rng) = setup();
        let mut tape = Tape::new();
        let x = tape.constant(g.features().clone());
        let mut ctx = ForwardCtx {
            tape: &mut tape,
            adj: &adj,
            x,
            edge_mask: None,
            train: false,
            rng: &mut rng,
        };
        let out = gcn.forward(&mut ctx);
        assert_eq!(tape.shape(out.hidden), (4, 8));
        assert_eq!(tape.shape(out.logits), (4, 2));
        assert_eq!(out.param_vars.len(), 4);
    }

    #[test]
    fn gradients_flow_to_all_params() {
        let (g, adj, gcn, mut rng) = setup();
        let mut tape = Tape::new();
        let x = tape.constant(g.features().clone());
        let mut ctx = ForwardCtx {
            tape: &mut tape,
            adj: &adj,
            x,
            edge_mask: None,
            train: false,
            rng: &mut rng,
        };
        let out = gcn.forward(&mut ctx);
        let labels = std::sync::Arc::new(g.labels().to_vec());
        let idx = std::sync::Arc::new(vec![0usize, 1, 2, 3]);
        let loss = tape.cross_entropy_masked(out.logits, labels, idx);
        tape.backward(loss);
        for &pv in &out.param_vars {
            assert!(tape.grad(pv).is_some(), "param missing grad");
        }
    }

    #[test]
    fn zero_edge_mask_blocks_neighbours() {
        // With a zero edge mask, only self-loops (weight 1) aggregate, so a
        // node's logits depend only on its own features.
        let (g, adj, gcn, mut rng) = setup();
        let nnz = adj.nnz();
        // mask: zero everywhere except self-loops
        let src = g.adjacency();
        let lifted = adj.lift_edge_weights(src, &vec![0.0; src.nnz()]);
        let mut tape = Tape::new();
        let x = tape.constant(g.features().clone());
        let m = tape.constant(Matrix::col_vec(&lifted));
        assert_eq!(lifted.len(), nnz);
        let mut ctx = ForwardCtx {
            tape: &mut tape,
            adj: &adj,
            x,
            edge_mask: Some(m),
            train: false,
            rng: &mut rng,
        };
        let out = gcn.forward(&mut ctx);
        let masked_logits = tape.value(out.logits).clone();

        // Compare against an isolated-node graph (no edges at all).
        let iso = Graph::new(4, &[], g.features().clone(), g.labels().to_vec());
        let adj_iso = AdjView::of_graph(&iso);
        let mut tape2 = Tape::new();
        let x2 = tape2.constant(g.features().clone());
        let mut ctx2 = ForwardCtx {
            tape: &mut tape2,
            adj: &adj_iso,
            x: x2,
            edge_mask: None,
            train: false,
            rng: &mut rng,
        };
        let out2 = gcn.forward(&mut ctx2);
        // Self-loop weights differ (degree normalisation), so compare signs
        // of dependence instead: masked output of node 0 must not change when
        // node 3's features change.
        let mut feats = g.features().clone();
        feats[(3, 0)] += 10.0;
        let mut tape3 = Tape::new();
        let x3 = tape3.constant(feats);
        let m3 = tape3.constant(Matrix::col_vec(&lifted));
        let mut ctx3 = ForwardCtx {
            tape: &mut tape3,
            adj: &adj,
            x: x3,
            edge_mask: Some(m3),
            train: false,
            rng: &mut rng,
        };
        let out3 = gcn.forward(&mut ctx3);
        for j in 0..2 {
            assert!(
                (tape3.value(out3.logits)[(0, j)] - masked_logits[(0, j)]).abs() < 1e-5,
                "node 0 must be isolated from node 3 under zero mask"
            );
        }
        let _ = out2;
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (_, _, mut gcn, _) = setup();
        let snap = gcn.param_values();
        let before = snap[0].clone();
        gcn.params_mut()[0].value.map_inplace(|x| x + 1.0);
        assert!(gcn.param_values()[0].max_abs_diff(&before) > 0.5);
        gcn.restore(&snap);
        assert!(gcn.param_values()[0].max_abs_diff(&before) < 1e-9);
    }
}
