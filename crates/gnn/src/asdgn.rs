//! Anti-Symmetric Deep Graph Network (Gravina et al., ICLR 2023).
//!
//! A stable, non-dissipative DGN obtained by discretising the ODE
//! `h' = tanh((W − Wᵀ − γI) h + Φ(A) h + b)` with explicit Euler steps:
//! `h^{t+1} = h^t + ε · tanh(...)`. The antisymmetric weight keeps the
//! Jacobian's eigenvalues on the imaginary axis, preserving long-range
//! information.

use rand::rngs::StdRng;
use ses_tensor::{init, Matrix, Param};

use crate::encoder::{restore_params, snapshot_params, Encoder, EncoderOutput, ForwardCtx};

/// A-SDGN encoder: input projection, `t_steps` antisymmetric Euler steps,
/// linear readout.
#[derive(Debug, Clone)]
pub struct Asdgn {
    w_in: Param,
    b_in: Param,
    w: Param,
    w_agg: Param,
    b: Param,
    w_out: Param,
    b_out: Param,
    hidden: usize,
    out: usize,
    t_steps: usize,
    epsilon: f32,
    gamma: f32,
}

impl Asdgn {
    /// Creates an A-SDGN with `t_steps` Euler iterations (paper default ~4),
    /// step size `ε = 0.1` and diffusion `γ = 0.1`.
    pub fn new(in_dim: usize, hidden: usize, out: usize, t_steps: usize, rng: &mut StdRng) -> Self {
        Self {
            w_in: Param::new(init::xavier_uniform(in_dim, hidden, rng)),
            b_in: Param::new(Matrix::zeros(1, hidden)),
            w: Param::new(init::xavier_uniform(hidden, hidden, rng)),
            w_agg: Param::new(init::xavier_uniform(hidden, hidden, rng)),
            b: Param::new(Matrix::zeros(1, hidden)),
            w_out: Param::new(init::xavier_uniform(hidden, out, rng)),
            b_out: Param::new(Matrix::zeros(1, out)),
            hidden,
            out,
            t_steps,
            epsilon: 0.1,
            gamma: 0.1,
        }
    }
}

impl Encoder for Asdgn {
    fn forward(&self, ctx: &mut ForwardCtx<'_>) -> EncoderOutput {
        let tape = &mut *ctx.tape;
        let w_in = self.w_in.watch(tape);
        let b_in = self.b_in.watch(tape);
        let w = self.w.watch(tape);
        let w_agg = self.w_agg.watch(tape);
        let b = self.b.watch(tape);
        let w_out = self.w_out.watch(tape);
        let b_out = self.b_out.watch(tape);

        let norm = tape.constant(Matrix::col_vec(ctx.adj.sym_norm()));
        let vals = match ctx.edge_mask {
            Some(m) => tape.mul(norm, m),
            None => norm,
        };

        // antisymmetric recurrent weight: W − Wᵀ − γI
        let wt = tape.transpose(w);
        let anti = tape.sub(w, wt);
        let gamma_i = tape.constant(Matrix::identity(self.hidden).scale(self.gamma));
        let anti = tape.sub(anti, gamma_i);

        let mut h = tape.linear(ctx.x, w_in, b_in);
        for _ in 0..self.t_steps {
            let self_term = tape.matmul(h, anti);
            let agg = tape.spmm(ctx.adj.structure().clone(), vals, h);
            let agg_term = tape.matmul(agg, w_agg);
            let sum = tape.add(self_term, agg_term);
            let pre = tape.add_row_broadcast(sum, b);
            let act = tape.tanh(pre);
            let step = tape.scale(act, self.epsilon);
            h = tape.add(h, step);
        }
        let hidden = h;
        let logits = tape.linear(hidden, w_out, b_out);
        EncoderOutput {
            hidden,
            logits,
            param_vars: vec![w_in, b_in, w, w_agg, b, w_out, b_out],
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.w_in,
            &mut self.b_in,
            &mut self.w,
            &mut self.w_agg,
            &mut self.b,
            &mut self.w_out,
            &mut self.b_out,
        ]
    }

    fn param_values(&self) -> Vec<Matrix> {
        snapshot_params(&[
            &self.w_in,
            &self.b_in,
            &self.w,
            &self.w_agg,
            &self.b,
            &self.w_out,
            &self.b_out,
        ])
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        restore_params(&mut self.params_mut(), snapshot);
    }

    fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn out_dim(&self) -> usize {
        self.out
    }

    fn name(&self) -> &'static str {
        "A-SDGN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjview::AdjView;
    use rand::SeedableRng;
    use ses_graph::Graph;
    use ses_tensor::Tape;

    #[test]
    fn forward_stable_over_many_steps() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = Graph::new(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            Matrix::identity(4),
            vec![0, 1, 0, 1],
        );
        let adj = AdjView::of_graph(&g);
        let m = Asdgn::new(4, 6, 2, 16, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(g.features().clone());
        let mut ctx = ForwardCtx {
            tape: &mut tape,
            adj: &adj,
            x,
            edge_mask: None,
            train: false,
            rng: &mut rng,
        };
        let out = m.forward(&mut ctx);
        assert!(
            tape.value(out.logits).all_finite(),
            "deep iteration must stay finite"
        );
        assert!(
            tape.value(out.logits).frobenius_norm() < 1e3,
            "non-dissipative but bounded"
        );
    }

    #[test]
    fn grads_flow() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = Graph::new(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            Matrix::identity(4),
            vec![0, 1, 0, 1],
        );
        let adj = AdjView::of_graph(&g);
        let m = Asdgn::new(4, 6, 2, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(g.features().clone());
        let mut ctx = ForwardCtx {
            tape: &mut tape,
            adj: &adj,
            x,
            edge_mask: None,
            train: false,
            rng: &mut rng,
        };
        let out = m.forward(&mut ctx);
        let labels = std::sync::Arc::new(g.labels().to_vec());
        let idx = std::sync::Arc::new((0..4).collect::<Vec<_>>());
        let loss = tape.cross_entropy_masked(out.logits, labels, idx);
        tape.backward(loss);
        for &pv in &out.param_vars {
            assert!(tape.grad(pv).is_some());
        }
    }
}
