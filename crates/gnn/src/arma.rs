//! ARMA graph convolution (Bianchi et al., 2021), single-stack recursive
//! formulation: `X̄^{(t+1)} = σ(L̂ X̄^{(t)} W + X V)`.

use rand::rngs::StdRng;
use ses_tensor::{init, Matrix, Param};

use crate::encoder::{restore_params, snapshot_params, Encoder, EncoderOutput, ForwardCtx};

/// ARMA₁ filter with `t_iters` recursive propagation steps followed by a
/// linear readout.
#[derive(Debug, Clone)]
pub struct Arma {
    v_in: Param,
    w_rec: Param,
    b: Param,
    w_out: Param,
    b_out: Param,
    hidden: usize,
    out: usize,
    t_iters: usize,
}

impl Arma {
    /// Creates an ARMA encoder with `t_iters` propagation iterations
    /// (the original paper uses T ∈ {1..4}; default callers pass 2).
    pub fn new(in_dim: usize, hidden: usize, out: usize, t_iters: usize, rng: &mut StdRng) -> Self {
        assert!(t_iters >= 1);
        Self {
            v_in: Param::new(init::xavier_uniform(in_dim, hidden, rng)),
            w_rec: Param::new(init::xavier_uniform(hidden, hidden, rng)),
            b: Param::new(Matrix::zeros(1, hidden)),
            w_out: Param::new(init::xavier_uniform(hidden, out, rng)),
            b_out: Param::new(Matrix::zeros(1, out)),
            hidden,
            out,
            t_iters,
        }
    }
}

impl Encoder for Arma {
    fn forward(&self, ctx: &mut ForwardCtx<'_>) -> EncoderOutput {
        let tape = &mut *ctx.tape;
        let v_in = self.v_in.watch(tape);
        let w_rec = self.w_rec.watch(tape);
        let b = self.b.watch(tape);
        let w_out = self.w_out.watch(tape);
        let b_out = self.b_out.watch(tape);

        let norm = tape.constant(Matrix::col_vec(ctx.adj.sym_norm()));
        let vals = match ctx.edge_mask {
            Some(m) => tape.mul(norm, m),
            None => norm,
        };

        // X V (skip connection to the raw input at every iteration)
        let xv = tape.matmul(ctx.x, v_in);
        let mut state = {
            let pre = tape.add_row_broadcast(xv, b);
            tape.relu(pre)
        };
        for _ in 0..self.t_iters {
            let prop = tape.spmm(ctx.adj.structure().clone(), vals, state);
            let rec = tape.matmul(prop, w_rec);
            let sum = tape.add(rec, xv);
            let pre = tape.add_row_broadcast(sum, b);
            state = tape.relu(pre);
        }
        let hidden = state;
        let logits = tape.linear(hidden, w_out, b_out);
        EncoderOutput {
            hidden,
            logits,
            param_vars: vec![v_in, w_rec, b, w_out, b_out],
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.v_in,
            &mut self.w_rec,
            &mut self.b,
            &mut self.w_out,
            &mut self.b_out,
        ]
    }

    fn param_values(&self) -> Vec<Matrix> {
        snapshot_params(&[&self.v_in, &self.w_rec, &self.b, &self.w_out, &self.b_out])
    }

    fn restore(&mut self, snapshot: &[Matrix]) {
        restore_params(&mut self.params_mut(), snapshot);
    }

    fn hidden_dim(&self) -> usize {
        self.hidden
    }

    fn out_dim(&self) -> usize {
        self.out
    }

    fn name(&self) -> &'static str {
        "ARMA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjview::AdjView;
    use rand::SeedableRng;
    use ses_graph::Graph;
    use ses_tensor::Tape;

    #[test]
    fn forward_and_grads() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Graph::new(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            Matrix::identity(4),
            vec![0, 1, 0, 1],
        );
        let adj = AdjView::of_graph(&g);
        let arma = Arma::new(4, 6, 2, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(g.features().clone());
        let mut ctx = ForwardCtx {
            tape: &mut tape,
            adj: &adj,
            x,
            edge_mask: None,
            train: false,
            rng: &mut rng,
        };
        let out = arma.forward(&mut ctx);
        assert_eq!(tape.shape(out.logits), (4, 2));
        let labels = std::sync::Arc::new(g.labels().to_vec());
        let idx = std::sync::Arc::new((0..4).collect::<Vec<_>>());
        let loss = tape.cross_entropy_masked(out.logits, labels, idx);
        tape.backward(loss);
        for &pv in &out.param_vars {
            assert!(tape.grad(pv).is_some());
        }
    }
}
