//! Fidelity+ (Pope et al., CVPR 2019; Eq. 14 of the SES paper): the accuracy
//! drop caused by removing the features an explainer marks as important.
//!
//! `Fidelity+ = (1/N) Σ_i [ 1(ŷ_i = y_i) − 1(ŷ_i^{1−m_i} = y_i) ]` where the
//! complementary mask `1 − m_i` zeroes each node's top-k most important
//! feature dimensions.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses_graph::Graph;
use ses_tensor::{Matrix, Tape};

use crate::adjview::AdjView;
use crate::encoder::{Encoder, ForwardCtx};

/// Zeroes, per node, the `top_k` feature dimensions with the largest
/// importance weight **among that node's non-zero features** (the paper
/// removes "the top-5 important features of each node"; zero features carry
/// no signal to remove).
pub fn mask_top_features(features: &Matrix, importance: &Matrix, top_k: usize) -> Matrix {
    assert_eq!(
        features.shape(),
        importance.shape(),
        "mask_top_features: shape mismatch"
    );
    let (n, f) = features.shape();
    let mut out = features.clone();
    let mut order: Vec<usize> = Vec::with_capacity(f);
    for i in 0..n {
        order.clear();
        order.extend((0..f).filter(|&j| features[(i, j)].abs().to_bits() != 0));
        order.sort_by(|&a, &b| importance[(i, b)].total_cmp(&importance[(i, a)]));
        for &j in order.iter().take(top_k) {
            out[(i, j)] = 0.0;
        }
    }
    out
}

/// Runs `encoder` on custom features and returns argmax predictions.
pub fn predict_with_features(
    encoder: &dyn Encoder,
    adj: &AdjView,
    features: &Matrix,
    seed: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tape = Tape::new();
    let x = tape.constant(features.clone());
    let mut ctx = ForwardCtx {
        tape: &mut tape,
        adj,
        x,
        edge_mask: None,
        train: false,
        rng: &mut rng,
    };
    let out = encoder.forward(&mut ctx);
    tape.value(out.logits).argmax_rows()
}

/// Fidelity+ (accuracy form) of a feature-importance explanation over the
/// nodes in `idx`. Higher is better: the removed features mattered.
pub fn fidelity_plus(
    encoder: &dyn Encoder,
    graph: &Graph,
    adj: &AdjView,
    importance: &Matrix,
    top_k: usize,
    idx: &[usize],
) -> f64 {
    let orig = predict_with_features(encoder, adj, graph.features(), 0);
    let masked_features = mask_top_features(graph.features(), importance, top_k);
    let masked = predict_with_features(encoder, adj, &masked_features, 0);
    let labels = graph.labels();
    let mut delta = 0.0f64;
    for &i in idx {
        let orig_hit = (orig[i] == labels[i]) as i32;
        let masked_hit = (masked[i] == labels[i]) as i32;
        delta += (orig_hit - masked_hit) as f64;
    }
    delta / idx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_removes_top_features_only_nonzero() {
        let feats = Matrix::from_vec(1, 4, vec![1.0, 0.0, 1.0, 1.0]);
        let imp = Matrix::from_vec(1, 4, vec![0.9, 1.0, 0.5, 0.1]);
        // top-2 among non-zero features (cols 0, 2, 3 by importance: 0, 2, 3)
        let out = mask_top_features(&feats, &imp, 2);
        assert_eq!(out.as_slice(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn mask_topk_larger_than_features() {
        let feats = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let imp = Matrix::from_vec(1, 2, vec![0.5, 0.6]);
        let out = mask_top_features(&feats, &imp, 10);
        assert_eq!(out.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn fidelity_of_random_importance_near_zero_for_identity_model() {
        // A model ignoring features entirely -> fidelity must be 0.
        use crate::gcn::Gcn;
        use ses_graph::Graph;
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::new(
            6,
            &[(0, 1), (1, 2), (3, 4), (4, 5)],
            Matrix::zeros(6, 4),
            vec![0, 0, 0, 1, 1, 1],
        );
        let adj = AdjView::of_graph(&g);
        let gcn = Gcn::new(4, 4, 2, &mut rng);
        // zero features: masking them changes nothing
        let imp = Matrix::ones(6, 4);
        let fid = fidelity_plus(&gcn, &g, &adj, &imp, 2, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(fid, 0.0);
    }
}
