//! `fault-drill` — CI harness proving every recovery path actually fires.
//!
//! Trains a small GCN on the PolBlogs stand-in under an ambient `SES_FAULT`
//! spec (e.g. `SES_FAULT=nan-grad@3,seed=7`) and exits 0 only when the run
//! both completes *and* the recovery counter matching the injected fault is
//! non-zero — a run that "succeeds" without exercising the recovery path is
//! a drill failure.
//!
//! With `SES_RECOVERY=off` the drill inverts: the retry budget drops to
//! zero, checkpoint writes become strict, and kernel panic isolation is
//! switched off, so the same fault must kill the process (non-zero exit).
//! `ci.sh` asserts both directions for every fault kind. See
//! `docs/ROBUSTNESS.md` for the fault-spec grammar.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses_data::{realworld, Profile, Splits};
use ses_gnn::{train_node_classifier, AdjView, Gcn, TrainConfig};
use ses_resilience::{FaultKind, RecoveryPolicy};

fn main() {
    // Counters must count regardless of ambient SES_OBS, and worker-panic
    // faults only fire when kernels actually spawn workers.
    ses_obs::set_enabled_override(Some(true));
    ses_tensor::par::set_thread_override(4);

    let recovery_off = std::env::var("SES_RECOVERY").is_ok_and(|v| v == "off");
    let fault = ses_resilience::fault::from_env();
    match (&fault, recovery_off) {
        (Some(spec), false) => eprintln!("fault-drill: injecting {spec}, recovery ON"),
        (Some(spec), true) => eprintln!("fault-drill: injecting {spec}, recovery OFF"),
        (None, _) => eprintln!("fault-drill: no SES_FAULT set, running clean"),
    }

    let ckpt_path =
        std::env::temp_dir().join(format!("ses-fault-drill-{}.ckpt", std::process::id()));
    let recovery = if recovery_off {
        // Invert every net: no rollback budget, checkpoint IO errors are
        // fatal, and a poisoned worker propagates instead of degrading.
        ses_tensor::par::set_isolation_enabled(false);
        RecoveryPolicy {
            max_retries: 0,
            strict_checkpoints: true,
            ..RecoveryPolicy::standard()
        }
    } else {
        RecoveryPolicy::standard()
    };

    let mut rng = StdRng::seed_from_u64(41);
    let d = realworld::polblogs_like(Profile::Fast, &mut rng);
    let adj = AdjView::of_graph(&d.graph);
    let splits = Splits::classification(d.graph.n_nodes(), &mut rng);
    let mut gcn = Gcn::new(d.graph.n_features(), 8, d.graph.n_classes(), &mut rng);
    let cfg = TrainConfig {
        epochs: 8,
        patience: 0,
        recovery: RecoveryPolicy {
            checkpoint_path: Some(ckpt_path.clone()),
            ..recovery
        },
        ..Default::default()
    };

    let result = train_node_classifier(&mut gcn, &d.graph, &adj, &splits, &cfg);
    let _ = std::fs::remove_file(&ckpt_path);

    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("fault-drill: training aborted: {e}");
            std::process::exit(1);
        }
    };
    if report.loss_curve.len() != cfg.epochs || !report.loss_curve.iter().all(|l| l.is_finite()) {
        eprintln!(
            "fault-drill: incomplete or non-finite loss curve ({} epochs)",
            report.loss_curve.len()
        );
        std::process::exit(1);
    }

    // The counter matching the injected fault must have moved: recovery that
    // never ran is indistinguishable from a fault that never fired.
    if let Some(spec) = fault {
        let (name, count) = match spec.kind {
            FaultKind::NanGrad => (
                "trainer.recover.rollbacks",
                ses_obs::metrics::TRAIN_RECOVER_ROLLBACKS.get(),
            ),
            FaultKind::WorkerPanic => (
                "kernel.panic_degraded",
                ses_obs::metrics::KERNEL_PANIC_DEGRADED.get(),
            ),
            FaultKind::CkptIo => (
                "trainer.recover.ckpt_io_errors",
                ses_obs::metrics::TRAIN_RECOVER_CKPT_IO_ERRORS.get(),
            ),
            FaultKind::SlowStage(_) | FaultKind::PanicRequest(_) | FaultKind::CachePoison => {
                // Serve-path faults are drilled by `serve-drill` (ses-serve),
                // not the training loop — running them here would silently
                // measure nothing.
                eprintln!("fault-drill: {spec} is a serve-path fault; use serve-drill");
                std::process::exit(1);
            }
        };
        if count == 0 {
            eprintln!("fault-drill: {spec} injected but {name} counter stayed 0");
            std::process::exit(1);
        }
        eprintln!("fault-drill: recovered from {spec} ({name} = {count})");
    }
    eprintln!(
        "fault-drill: ok (final loss {:.4}, test acc {:.3})",
        report.loss_curve.last().copied().unwrap_or(f32::NAN),
        report.test_acc
    );
}
