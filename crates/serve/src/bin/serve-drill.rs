//! `serve-drill` — CI harness proving every serving safety net actually
//! fires.
//!
//! Builds a synthetic serving artifact over the PolBlogs stand-in, attaches
//! checkpoint provenance and a translation-validated inference plan, then
//! serves a scripted request sequence under an ambient serve-path
//! `SES_FAULT` spec (`slow-stage@<stage>`, `panic@request-<n>`,
//! `cache-poison`). Exit 0 requires that every request completes (possibly
//! degraded), that at least one request shed under the overload burst, and
//! that the recovery counter matching the injected fault moved — a drill
//! that "passes" without exercising its net is a drill failure.
//!
//! With `SES_RECOVERY=off` the nets are removed: the panic boundary is
//! gone (an injected panic kills the process), a deadline breach or a
//! poisoned cache hit is a hard error. `ci.sh` asserts both directions for
//! every serve fault kind. See `docs/SERVING.md` for the ladder and
//! `docs/ROBUSTNESS.md` for the grammar.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses_data::{realworld, Profile};
use ses_resilience::FaultKind;
use ses_serve::{ModelArtifact, ServeConfig, Server};

fn main() {
    // Counters must count regardless of ambient SES_OBS.
    ses_obs::set_enabled_override(Some(true));

    let recovery_off = std::env::var("SES_RECOVERY").is_ok_and(|v| v == "off");
    let fault = ses_resilience::fault::from_env();
    match (&fault, recovery_off) {
        (Some(spec), false) => eprintln!("serve-drill: injecting {spec}, recovery ON"),
        (Some(spec), true) => eprintln!("serve-drill: injecting {spec}, recovery OFF"),
        (None, _) => eprintln!("serve-drill: no SES_FAULT set, running clean"),
    }
    if let Some(spec) = &fault {
        if spec.kind.is_training() {
            eprintln!("serve-drill: {spec} is a training fault; use fault-drill");
            std::process::exit(1);
        }
    }

    let mut rng = StdRng::seed_from_u64(41);
    let d = realworld::polblogs_like(Profile::Fast, &mut rng);
    let mut artifact = ModelArtifact::synthetic(d.graph, 2, 17);

    // Provenance: write a checkpoint and restore it through the
    // corruption-hardened resolver, then plan-check the quickstart tape.
    let ckpt_base =
        std::env::temp_dir().join(format!("ses-serve-drill-{}.ckpt", std::process::id()));
    let ckpt = ses_resilience::TrainCheckpoint {
        epoch: 3,
        adam_steps: 9,
        lr: 0.01,
        rng_state: [41, 0, 0, 0],
        params: Vec::new(),
    };
    let rotated = ses_resilience::rotated_path(&ckpt_base, 3);
    if let Err(e) = ckpt.write_atomic(&rotated, false) {
        eprintln!("serve-drill: checkpoint write failed: {e}");
        std::process::exit(1);
    }
    match artifact.attach_checkpoint(&ckpt_base) {
        Ok(epoch) => eprintln!("serve-drill: serving checkpoint epoch {epoch}"),
        Err(e) => {
            eprintln!("serve-drill: checkpoint attach failed: {e}");
            std::process::exit(1);
        }
    }
    let _ = std::fs::remove_file(&rotated);
    let step = ses_core::explain_step_annotated();
    if let Err(e) = artifact.attach_plan(&step) {
        eprintln!("serve-drill: inference plan rejected: {e}");
        std::process::exit(1);
    }

    let n_nodes = artifact.graph.n_nodes();
    let server = Server::new(
        artifact,
        ServeConfig {
            queue_capacity: 4,
            deadline_ns: 50_000_000, // 50ms: generous clean, breached by slow-stage
            max_retries: 2,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            backoff_base_ns: 50_000,
            backoff_max_ns: 2_000_000,
            seed: 41,
            recovery: !recovery_off,
            fault,
            ..ServeConfig::default()
        },
    );

    // Phase 1 — scripted request sequence. Node 0 repeats so the cache path
    // (and a cache-poison fault) is exercised; ids 0..12 cover the
    // `panic@request-<n>` targets ci.sh uses.
    let script: Vec<usize> = (0..12)
        .map(|i| [0, 0, 1, 2, 3, 0][i % 6] % n_nodes)
        .collect();
    for (i, &node) in script.iter().enumerate() {
        match server.serve_one(node) {
            Ok(resp) => {
                if resp.degraded {
                    eprintln!(
                        "serve-drill: request {i} degraded to {:?} (recovered)",
                        resp.tier
                    );
                }
            }
            Err(e) => {
                eprintln!("serve-drill: request {i} failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Phase 2 — overload burst: fill the bounded queue past capacity, then
    // drain. The shed must reject the newest submissions while every
    // admitted request still completes.
    let mut shed_here = 0u64;
    for i in 0..6 {
        if server.submit(i % n_nodes).is_err() {
            shed_here += 1;
        }
    }
    while let Some((req, result)) = server.run_next() {
        if let Err(e) = result {
            eprintln!("serve-drill: queued request {} failed: {e}", req.id);
            std::process::exit(1);
        }
    }
    if shed_here == 0 {
        eprintln!("serve-drill: overload burst shed nothing (queue cap not enforced)");
        std::process::exit(1);
    }

    // The counter matching the injected fault must have moved: a net that
    // never fired is indistinguishable from a fault that never fired.
    if let Some(spec) = fault {
        let (name, count) = match spec.kind {
            FaultKind::SlowStage(_) => (
                "serve.deadline.breach",
                ses_obs::metrics::SERVE_DEADLINE_BREACH.get(),
            ),
            FaultKind::PanicRequest(_) => (
                "serve.panic_isolated",
                ses_obs::metrics::SERVE_PANIC_ISOLATED.get(),
            ),
            FaultKind::CachePoison => (
                "serve.cache.poisoned",
                ses_obs::metrics::SERVE_CACHE_POISONED.get(),
            ),
            FaultKind::NanGrad | FaultKind::WorkerPanic | FaultKind::CkptIo => {
                unreachable!("training kinds rejected above")
            }
        };
        if count == 0 {
            eprintln!("serve-drill: {spec} injected but {name} counter stayed 0");
            std::process::exit(1);
        }
        eprintln!("serve-drill: recovered from {spec} ({name} = {count})");
    }

    // One structured record with the full serve counter family, so
    // obs-validate can assert the telemetry contract end to end.
    ses_obs::Record::new("serve_counters")
        .uint("admitted", ses_obs::metrics::SERVE_ADMITTED.get())
        .uint("shed", ses_obs::metrics::SERVE_SHED.get())
        .uint("completed", ses_obs::metrics::SERVE_COMPLETED.get())
        .uint("failed", ses_obs::metrics::SERVE_FAILED.get())
        .uint(
            "panic_isolated",
            ses_obs::metrics::SERVE_PANIC_ISOLATED.get(),
        )
        .uint("retries", ses_obs::metrics::SERVE_RETRIES.get())
        .uint(
            "deadline_breach",
            ses_obs::metrics::SERVE_DEADLINE_BREACH.get(),
        )
        .uint("breaker_open", ses_obs::metrics::SERVE_BREAKER_OPEN.get())
        .uint("cache_hit", ses_obs::metrics::SERVE_CACHE_HIT.get())
        .uint("cache_miss", ses_obs::metrics::SERVE_CACHE_MISS.get())
        .uint("cache_evict", ses_obs::metrics::SERVE_CACHE_EVICT.get())
        .uint(
            "cache_poisoned",
            ses_obs::metrics::SERVE_CACHE_POISONED.get(),
        )
        .uint(
            "degraded_cache",
            ses_obs::metrics::SERVE_DEGRADED_CACHE.get(),
        )
        .uint(
            "degraded_saliency",
            ses_obs::metrics::SERVE_DEGRADED_SALIENCY.get(),
        )
        .uint(
            "degraded_predict_only",
            ses_obs::metrics::SERVE_DEGRADED_PREDICT_ONLY.get(),
        )
        .emit();

    eprintln!(
        "serve-drill: ok ({} admitted, {} shed, {} completed)",
        ses_obs::metrics::SERVE_ADMITTED.get(),
        ses_obs::metrics::SERVE_SHED.get(),
        ses_obs::metrics::SERVE_COMPLETED.get()
    );
}
