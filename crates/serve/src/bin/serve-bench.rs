//! `serve-bench` — throughput and tail-latency benchmark for the serving
//! runtime, plus the p99 latency gate wired into `ci.sh`.
//!
//! Serves a seeded request mix (hot nodes repeat, so the cache path carries
//! real weight) against a synthetic PolBlogs-sized artifact with several
//! worker threads draining the shared admission queue, then runs a
//! deterministic overload burst that must shed. Writes a machine-readable
//! `BENCH_serve.json` report and emits a `bench_row` record for
//! `obs-validate`.
//!
//! Environment:
//! * `SES_BENCH_QUICK=1` — fewer requests (the CI smoke mode);
//! * `SES_BENCH_OUT=<path>` — where to write the JSON report
//!   (default `BENCH_serve.json` in the invocation directory);
//! * `SES_SERVE_P99_BUDGET_MS=<ms>` — p99 per-request explain-latency gate
//!   (default 250 ms); the bench exits non-zero past it.

use std::sync::atomic::{AtomicBool, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_data::{realworld, Profile};
use ses_serve::backoff::sleep_for;
use ses_serve::{ModelArtifact, ServeConfig, Server, Tier};

const WORKERS: usize = 4;

fn main() {
    ses_obs::set_enabled_override(Some(true));
    let quick = std::env::var("SES_BENCH_QUICK").is_ok_and(|v| v == "1");
    let requests: usize = if quick { 300 } else { 2_000 };
    let budget_ms: f64 = std::env::var("SES_SERVE_P99_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250.0);

    let mut rng = StdRng::seed_from_u64(23);
    let d = realworld::polblogs_like(Profile::Fast, &mut rng);
    let n_nodes = d.graph.n_nodes();
    let artifact = ModelArtifact::synthetic(d.graph, 2, 23);
    let server = Server::new(
        artifact,
        ServeConfig {
            queue_capacity: 64,
            ..ServeConfig::default()
        },
    );

    // Request mix: 70% of traffic over 16 hot nodes, the rest uniform.
    let nodes: Vec<usize> = (0..requests)
        .map(|_| {
            if rng.gen::<f64>() < 0.7 {
                rng.gen_range(0..16.min(n_nodes))
            } else {
                rng.gen_range(0..n_nodes)
            }
        })
        .collect();

    // Phase 1 — throughput: one producer with backpressure (a shed here is
    // retried, not dropped), WORKERS consumers timing each request.
    let done = AtomicBool::new(false);
    let wall = ses_obs::Stopwatch::start();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(requests);
    let mut tier_counts = [0u64; 4];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..WORKERS {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(u64, Tier)> = Vec::new();
                loop {
                    let sw = ses_obs::Stopwatch::start();
                    match server.run_next() {
                        Some((req, Ok(resp))) => {
                            let _ = req;
                            local.push((sw.elapsed_ns(), resp.tier));
                        }
                        Some((req, Err(e))) => {
                            eprintln!("serve-bench: request {} failed: {e}", req.id);
                            std::process::exit(1);
                        }
                        // ordering: shutdown flag; a late extra poll is harmless
                        None if done.load(Ordering::Relaxed) => return local,
                        None => sleep_for(std::time::Duration::from_micros(50)),
                    }
                }
            }));
        }
        for &node in &nodes {
            // Backpressure: keep trying until the queue has room.
            while server.submit(node).is_err() {
                sleep_for(std::time::Duration::from_micros(100));
            }
        }
        // ordering: shutdown flag publication; workers re-check queue after
        done.store(true, Ordering::Relaxed);
        for h in handles {
            for (ns, tier) in h.join().expect("worker panicked") {
                latencies_ns.push(ns);
                tier_counts[tier_index(tier)] += 1;
            }
        }
    });
    let wall_s = wall.elapsed_ms() / 1e3;
    if latencies_ns.len() != requests {
        eprintln!(
            "serve-bench: served {} of {requests} requests",
            latencies_ns.len()
        );
        std::process::exit(1);
    }

    // Phase 2 — deterministic overload: with no worker draining, submits
    // past capacity must shed (reject-newest), then the queue drains clean.
    let shed_before = ses_obs::metrics::SERVE_SHED.get();
    let burst = server.config().queue_capacity + 8;
    let mut burst_shed = 0u64;
    for i in 0..burst {
        if server.submit(i % n_nodes).is_err() {
            burst_shed += 1;
        }
    }
    while let Some((req, result)) = server.run_next() {
        if let Err(e) = result {
            eprintln!("serve-bench: post-burst request {} failed: {e}", req.id);
            std::process::exit(1);
        }
    }
    if burst_shed != 8 || ses_obs::metrics::SERVE_SHED.get() < shed_before + 8 {
        eprintln!(
            "serve-bench: overload burst shed {burst_shed} (expected 8) — queue cap not enforced"
        );
        std::process::exit(1);
    }

    latencies_ns.sort_unstable();
    let p50 = percentile_ns(&latencies_ns, 0.50);
    let p99 = percentile_ns(&latencies_ns, 0.99);
    let max = *latencies_ns.last().unwrap_or(&0);
    let rps = requests as f64 / wall_s.max(1e-9);
    let [full, cache, saliency, predict_only] = tier_counts;

    let out = std::env::var("SES_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"ses-bench-serve/v1\",\n",
            "  \"quick\": {quick},\n",
            "  \"workers\": {workers},\n",
            "  \"requests\": {requests},\n",
            "  \"rps\": {rps:.1},\n",
            "  \"p50_ns\": {p50},\n",
            "  \"p99_ns\": {p99},\n",
            "  \"max_ns\": {max},\n",
            "  \"shed\": {shed},\n",
            "  \"tiers\": {{\"full\": {full}, \"cache\": {cache}, ",
            "\"saliency\": {saliency}, \"predict_only\": {predict_only}}}\n",
            "}}\n"
        ),
        quick = quick,
        workers = WORKERS,
        requests = requests,
        rps = rps,
        p50 = p50,
        p99 = p99,
        max = max,
        shed = burst_shed,
        full = full,
        cache = cache,
        saliency = saliency,
        predict_only = predict_only,
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("serve-bench: cannot write {out}: {e}");
        std::process::exit(1);
    }

    ses_obs::Record::new("bench_row")
        .str("sheet", "serve")
        .uint("requests", requests as u64)
        .num("rps", rps)
        .uint("p50_ns", p50)
        .uint("p99_ns", p99)
        .uint("shed", burst_shed)
        .uint("cache_hits", ses_obs::metrics::SERVE_CACHE_HIT.get())
        .emit();

    eprintln!(
        "serve-bench: {requests} requests, {rps:.0} rps, p50 {:.2}ms, p99 {:.2}ms \
         (full {full} / cache {cache} / saliency {saliency} / predict-only {predict_only})",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
    );

    if (p99 as f64) / 1e6 > budget_ms {
        eprintln!(
            "serve-bench: p99 explain latency {:.2}ms exceeds the {budget_ms:.0}ms budget",
            p99 as f64 / 1e6
        );
        std::process::exit(1);
    }
    eprintln!("serve-bench: ok (report at {out})");
}

fn tier_index(t: Tier) -> usize {
    match t {
        Tier::Full => 0,
        Tier::Cache => 1,
        Tier::Saliency => 2,
        Tier::PredictOnly => 3,
    }
}

/// Exact percentile over sorted latencies (nearest-rank).
fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}
