//! Content-hash-keyed explanation cache with bounded memory and integrity
//! checksums.
//!
//! SES's global masks make explanations *stable*: two requests whose k-hop
//! computation subgraphs have identical content get identical explanations,
//! so the cache key is a content hash of the subgraph — the node set and
//! edge set, hashed order-independently (the key must not depend on BFS or
//! enumeration order, which can differ across code paths). Values carry an
//! FNV-1a checksum over their payload bits; a hit whose checksum no longer
//! matches (bit rot, a bug scribbling over the entry, the `cache-poison`
//! fault drill) is detected *before* it is served and counted in
//! `serve.cache.poisoned`.
//!
//! Capacity is bounded twice — max entries and max payload bytes — and
//! eviction is least-recently-used until both caps hold, each eviction
//! counted in `serve.cache.evict`. The counters reconcile by construction:
//! every `get` is exactly one hit or one miss, every cap-driven removal is
//! one eviction (poison discards are counted separately as poisonings).

use std::collections::HashMap;
use std::sync::Mutex;

use ses_obs::metrics;

/// One ranked-edge explanation: `(global_u, global_v, weight)`.
pub type Explanation = Vec<(usize, usize, f32)>;

/// Order-independent content hash of a computation subgraph: the key is
/// identical for any enumeration order of `nodes` and `edges`, and for
/// either orientation of an edge. Commutative mixing (wrapping sums of
/// per-element FNV-1a hashes) buys the order independence; hashing each
/// element through FNV first keeps the sum from being fooled by swapped
/// coordinates.
pub fn content_key(center: usize, k: usize, nodes: &[usize], edges: &[(usize, usize)]) -> u64 {
    let mut node_acc: u64 = 0;
    for &n in nodes {
        node_acc = node_acc.wrapping_add(fnv1a(&(n as u64).to_le_bytes()));
    }
    let mut edge_acc: u64 = 0;
    for &(u, v) in edges {
        // Canonical orientation before hashing so (u,v) == (v,u).
        let (lo, hi) = if u <= v { (u, v) } else { (v, u) };
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&(lo as u64).to_le_bytes());
        bytes[8..].copy_from_slice(&(hi as u64).to_le_bytes());
        edge_acc = edge_acc.wrapping_add(fnv1a(&bytes));
    }
    let mut head = [0u8; 32];
    head[..8].copy_from_slice(&(center as u64).to_le_bytes());
    head[8..16].copy_from_slice(&(k as u64).to_le_bytes());
    head[16..24].copy_from_slice(&node_acc.to_le_bytes());
    head[24..].copy_from_slice(&edge_acc.to_le_bytes());
    fnv1a(&head)
}

/// FNV-1a over a byte slice (same constants as the `SESCKPT1` trailer).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checksum of an explanation payload (weights by bit pattern, so NaN
/// corruption is caught too).
fn payload_checksum(edges: &Explanation) -> u64 {
    let mut bytes = Vec::with_capacity(edges.len() * 20);
    for &(u, v, w) in edges {
        bytes.extend_from_slice(&(u as u64).to_le_bytes());
        bytes.extend_from_slice(&(v as u64).to_le_bytes());
        bytes.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Approximate resident bytes of one entry's payload.
fn entry_bytes(edges: &Explanation) -> usize {
    edges.len() * std::mem::size_of::<(usize, usize, f32)>() + 64
}

struct Entry {
    edges: Explanation,
    checksum: u64,
    bytes: usize,
    last_used: u64,
}

/// What a cache lookup found.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// Key present, checksum valid — the cached explanation.
    Hit(Explanation),
    /// Key absent.
    Miss,
    /// Key present but the payload failed its checksum; the entry has been
    /// evicted. The caller decides whether to recompute (recovery on) or
    /// fail the request (recovery off).
    Poisoned,
}

/// Bounded, checksummed, LRU explanation cache. All operations take an
/// internal mutex; the runtime shares one cache across workers.
pub struct ExplanationCache {
    state: Mutex<CacheState>,
    max_entries: usize,
    max_bytes: usize,
}

struct CacheState {
    map: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
    poison_next: bool,
}

impl ExplanationCache {
    /// A cache holding at most `max_entries` explanations and `max_bytes`
    /// of payload. Zero caps are honoured literally (every insert evicts
    /// immediately), which keeps cap accounting proptestable.
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        Self {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                poison_next: false,
            }),
            max_entries,
            max_bytes,
        }
    }

    /// Looks up `key`, validating the checksum on a hit. Exactly one of
    /// `serve.cache.hit` / `serve.cache.miss` moves per call; a checksum
    /// failure counts the miss *and* `serve.cache.poisoned`, and removes
    /// the entry.
    pub fn get(&self, key: u64) -> Lookup {
        let mut st = self.lock();
        st.tick += 1;
        let tick = st.tick;
        match st.map.get_mut(&key) {
            None => {
                metrics::SERVE_CACHE_MISS.incr();
                Lookup::Miss
            }
            Some(entry) => {
                if payload_checksum(&entry.edges) != entry.checksum {
                    metrics::SERVE_CACHE_MISS.incr();
                    metrics::SERVE_CACHE_POISONED.incr();
                    let bytes = entry.bytes;
                    st.map.remove(&key);
                    st.bytes -= bytes;
                    return Lookup::Poisoned;
                }
                entry.last_used = tick;
                metrics::SERVE_CACHE_HIT.incr();
                Lookup::Hit(entry.edges.clone())
            }
        }
    }

    /// Inserts (or replaces) the explanation for `key`, then evicts
    /// least-recently-used entries until both caps hold. Each eviction
    /// counts `serve.cache.evict`; replacing a key in place does not.
    pub fn put(&self, key: u64, edges: Explanation) {
        let mut st = self.lock();
        st.tick += 1;
        let tick = st.tick;
        let mut checksum = payload_checksum(&edges);
        if st.poison_next {
            // Injected `cache-poison` fault: store a checksum that cannot
            // match, so the *next hit* trips the integrity net.
            st.poison_next = false;
            checksum = !checksum;
        }
        let bytes = entry_bytes(&edges);
        if let Some(old) = st.map.insert(
            key,
            Entry {
                edges,
                checksum,
                bytes,
                last_used: tick,
            },
        ) {
            st.bytes -= old.bytes;
        }
        st.bytes += bytes;
        self.evict_to_caps(&mut st);
    }

    fn evict_to_caps(&self, st: &mut CacheState) {
        while st.map.len() > self.max_entries || st.bytes > self.max_bytes {
            let Some((&victim, _)) = st.map.iter().min_by_key(|(_, e)| e.last_used) else {
                return; // caps unsatisfiable with an empty map (max_bytes=0)
            };
            // lint:allow(no-unwrap): victim key was just produced by iterating the map
            let e = st.map.remove(&victim).expect("victim present");
            st.bytes -= e.bytes;
            metrics::SERVE_CACHE_EVICT.incr();
        }
    }

    /// Arms the `cache-poison` fault: the next `put` stores a corrupt
    /// checksum. Drill/test hook — never armed in normal operation.
    pub fn arm_poison(&self) {
        self.lock().poison_next = true;
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current payload byte total.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        // lint:allow(no-unwrap): mutex poisoning is unreachable — no code path
        // panics while holding this lock (cache ops are pure data shuffling)
        self.state.lock().expect("cache mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(n: usize) -> Explanation {
        (0..n).map(|i| (i, i + 1, i as f32 * 0.5)).collect()
    }

    #[test]
    fn hit_after_put_miss_before() {
        ses_obs::set_enabled_override(Some(true));
        let c = ExplanationCache::new(8, 1 << 20);
        assert_eq!(c.get(1), Lookup::Miss);
        c.put(1, ex(3));
        assert_eq!(c.get(1), Lookup::Hit(ex(3)));
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn poisoned_entry_detected_and_removed() {
        ses_obs::set_enabled_override(Some(true));
        let c = ExplanationCache::new(8, 1 << 20);
        c.arm_poison();
        c.put(9, ex(2));
        let before = metrics::SERVE_CACHE_POISONED.get();
        assert_eq!(c.get(9), Lookup::Poisoned);
        assert_eq!(metrics::SERVE_CACHE_POISONED.get(), before + 1);
        assert_eq!(c.get(9), Lookup::Miss, "poisoned entry was evicted");
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn entry_cap_evicts_lru() {
        ses_obs::set_enabled_override(Some(true));
        let c = ExplanationCache::new(2, 1 << 20);
        c.put(1, ex(1));
        c.put(2, ex(1));
        let _ = c.get(1); // 1 is now more recent than 2
        c.put(3, ex(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), Lookup::Miss, "LRU entry 2 evicted");
        assert!(matches!(c.get(1), Lookup::Hit(_)));
        assert!(matches!(c.get(3), Lookup::Hit(_)));
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn byte_cap_respected() {
        ses_obs::set_enabled_override(Some(true));
        let per = entry_bytes(&ex(4));
        let c = ExplanationCache::new(100, 2 * per);
        c.put(1, ex(4));
        c.put(2, ex(4));
        c.put(3, ex(4));
        assert!(c.bytes() <= 2 * per);
        assert_eq!(c.len(), 2);
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn content_key_ignores_enumeration_order_and_orientation() {
        let k1 = content_key(5, 2, &[1, 2, 3], &[(1, 2), (2, 3)]);
        let k2 = content_key(5, 2, &[3, 1, 2], &[(3, 2), (2, 1)]);
        assert_eq!(k1, k2);
        // ... but not the content itself.
        assert_ne!(k1, content_key(5, 2, &[1, 2, 4], &[(1, 2), (2, 3)]));
        assert_ne!(k1, content_key(6, 2, &[1, 2, 3], &[(1, 2), (2, 3)]));
        assert_ne!(k1, content_key(5, 3, &[1, 2, 3], &[(1, 2), (2, 3)]));
    }
}
