//! The serving runtime: bounded admission, deadline-checked staged
//! explain, per-request panic isolation, and the graceful-degradation
//! ladder.
//!
//! One request flows through:
//!
//! ```text
//! submit ──bounded queue── run_next ──▶ process
//!   │ full queue: shed (serve.shed)       │
//!                                         ▼
//!                              breaker closed?──no──▶ degradation ladder
//!                                         │yes
//!                                         ▼
//!                    full pipeline (extract→encode→mask→rank),
//!                    deadline-checked at every stage boundary,
//!                    run inside the resilience panic boundary
//!                      │ panic: isolate → breaker → jittered retry
//!                      │ deadline breach: answer predict-only
//!                      ▼ retries exhausted
//!                             degradation ladder:
//!               cache hit → saliency fallback → predict-only
//! ```
//!
//! Every net has a counter (`serve.*`), every request is a trace, and the
//! injected `SES_FAULT` serve kinds (`slow-stage@<stage>`,
//! `panic@request-<n>`, `cache-poison`) drill each edge of the diagram.
//! With recovery disabled (`SES_RECOVERY=off` in the drill binary) the nets
//! are removed instead: panics propagate, breaches and poisoned cache
//! entries are hard errors.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use ses_explain::stage::stage;
use ses_graph::Subgraph;
use ses_obs::metrics;
use ses_resilience::fault::{FaultSpec, ServeStage};
use ses_resilience::run_request_isolated;

use crate::artifact::ModelArtifact;
use crate::backoff::{self, Backoff};
use crate::breaker::{CircuitBreaker, Route};
use crate::cache::{content_key, Explanation, ExplanationCache, Lookup};
use crate::deadline::Deadline;
use crate::error::ServeError;

/// Serving policy knobs. `Default` is tuned for tests and drills (small
/// queue, generous deadline); production callers set their own.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded admission-queue capacity; a full queue sheds new requests.
    pub queue_capacity: usize,
    /// Default per-request deadline budget in nanoseconds.
    pub deadline_ns: u64,
    /// Retries of the full pipeline after an isolated panic.
    pub max_retries: u32,
    /// Consecutive full-path failures before the breaker opens.
    pub breaker_threshold: u64,
    /// Requests the breaker stays open for once tripped.
    pub breaker_cooldown: u64,
    /// Explanation-cache entry cap.
    pub cache_entries: usize,
    /// Explanation-cache payload byte cap.
    pub cache_bytes: usize,
    /// First retry backoff delay (pre-jitter), nanoseconds.
    pub backoff_base_ns: u64,
    /// Backoff cap, nanoseconds.
    pub backoff_max_ns: u64,
    /// Seed for backoff jitter.
    pub seed: u64,
    /// `false` removes every net (the `SES_RECOVERY=off` drill mode):
    /// panics propagate, deadline breaches and poisoned cache hits are
    /// hard errors.
    pub recovery: bool,
    /// Injected fault, if any (drills pass `ses_resilience::fault::from_env()`).
    pub fault: Option<FaultSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            deadline_ns: 250_000_000, // 250ms — generous for CI containers
            max_retries: 2,
            breaker_threshold: 3,
            breaker_cooldown: 8,
            cache_entries: 1024,
            cache_bytes: 16 << 20,
            backoff_base_ns: 100_000, // 0.1ms first retry
            backoff_max_ns: 5_000_000,
            seed: 0,
            recovery: true,
            fault: None,
        }
    }
}

/// Which rung of the ladder answered a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Freshly computed full SES explanation.
    Full,
    /// Served from the explanation cache.
    Cache,
    /// Gradient-saliency fallback table.
    Saliency,
    /// Prediction only, no explanation.
    PredictOnly,
}

/// An admitted request waiting in the queue.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Admission-order id (0-based); `panic@request-<n>` targets this.
    pub id: u64,
    /// The node to predict and explain.
    pub node: usize,
    /// Deadline budget for this request, nanoseconds.
    pub deadline_ns: u64,
}

/// A served response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's admission id.
    pub id: u64,
    /// The explained node.
    pub node: usize,
    /// Predicted class.
    pub prediction: usize,
    /// Which ladder rung produced the explanation.
    pub tier: Tier,
    /// True when the rung is lower than what a healthy request would have
    /// received (a healthy cache hit is *not* degraded).
    pub degraded: bool,
    /// Ranked explanation edges `(u, v, weight)`, descending by weight.
    /// Empty for [`Tier::PredictOnly`].
    pub edges: Explanation,
}

/// The forward-only serving runtime. Shared across worker threads (`&self`
/// everywhere; internal queue/cache/breaker handle their own locking).
pub struct Server {
    artifact: ModelArtifact,
    cfg: ServeConfig,
    cache: ExplanationCache,
    breaker: CircuitBreaker,
    queue: Mutex<VecDeque<Request>>,
    next_id: AtomicU64,
    backoff: Mutex<Backoff>,
}

impl Server {
    /// Builds a server over a frozen artifact. A configured `cache-poison`
    /// fault is armed here (it corrupts the *next* cache write).
    pub fn new(artifact: ModelArtifact, cfg: ServeConfig) -> Self {
        let cache = ExplanationCache::new(cfg.cache_entries, cfg.cache_bytes);
        if cfg.fault.is_some_and(|f| f.is_cache_poison()) {
            cache.arm_poison();
        }
        let breaker = CircuitBreaker::new(cfg.breaker_threshold, cfg.breaker_cooldown);
        let backoff = Backoff::new(cfg.seed, cfg.backoff_base_ns, cfg.backoff_max_ns);
        Self {
            artifact,
            cfg,
            cache,
            breaker,
            queue: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(0),
            backoff: Mutex::new(backoff),
        }
    }

    /// The served artifact (read-only).
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The active config.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Admits a request with the default deadline, or sheds it when the
    /// queue is full. Returns the admission id.
    pub fn submit(&self, node: usize) -> Result<u64, ServeError> {
        self.submit_with_deadline(node, self.cfg.deadline_ns)
    }

    /// Admits a request with an explicit deadline budget. Reject-newest:
    /// a full queue sheds the *incoming* request (`serve.shed`) — queued
    /// work is never abandoned once accepted.
    pub fn submit_with_deadline(&self, node: usize, deadline_ns: u64) -> Result<u64, ServeError> {
        let mut q = self.lock_queue();
        if q.len() >= self.cfg.queue_capacity {
            metrics::SERVE_SHED.incr();
            return Err(ServeError::QueueFull {
                capacity: self.cfg.queue_capacity,
            });
        }
        // ordering: admission ids are a tally; queue mutex orders the pushes
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        metrics::SERVE_ADMITTED.incr();
        q.push_back(Request {
            id,
            node,
            deadline_ns,
        });
        Ok(id)
    }

    /// Pops and processes the oldest queued request. `None` when the queue
    /// is empty. Worker threads loop on this.
    pub fn run_next(&self) -> Option<(Request, Result<Response, ServeError>)> {
        let req = self.lock_queue().pop_front()?;
        Some((req, self.process(req)))
    }

    /// Convenience for serial callers: submit + immediately process. Only
    /// meaningful when no other worker is draining the queue.
    pub fn serve_one(&self, node: usize) -> Result<Response, ServeError> {
        self.submit(node)?;
        match self.run_next() {
            Some((_, result)) => result,
            // lint:allow(no-unwrap): the request pushed one line up is still queued
            None => unreachable!("queue cannot be empty after submit"),
        }
    }

    /// Queued (admitted, unprocessed) request count.
    pub fn queue_len(&self) -> usize {
        self.lock_queue().len()
    }

    /// Processes one request end to end: trace, deadline, breaker routing,
    /// isolation, ladder. This is the one place `serve.completed` /
    /// `serve.failed` and the request latency histogram move.
    pub fn process(&self, req: Request) -> Result<Response, ServeError> {
        let trace = ses_obs::trace::request("serve.request");
        let deadline = Deadline::start(req.deadline_ns);
        let result = self.process_inner(&req, &deadline);
        let ns = trace.elapsed_ns();
        metrics::SERVE_REQUEST_NS.record(ns);
        ses_obs::slo::global().observe("serve", ns);
        match &result {
            Ok(_) => metrics::SERVE_COMPLETED.incr(),
            Err(_) => metrics::SERVE_FAILED.incr(),
        }
        result
    }

    fn process_inner(&self, req: &Request, deadline: &Deadline) -> Result<Response, ServeError> {
        let prediction = self
            .artifact
            .prediction(req.node)
            .ok_or(ServeError::UnknownNode { node: req.node })?;

        if self.breaker.route() == Route::Degraded {
            return self.degraded_ladder(req, prediction, deadline);
        }

        let mut attempt: u32 = 0;
        loop {
            let outcome = if self.cfg.recovery {
                run_request_isolated(|| self.full_pipeline(req, attempt, deadline))
            } else {
                // Recovery off: no panic boundary — an injected panic kills
                // the process, which is exactly what the inverted drill
                // asserts.
                Ok(self.full_pipeline(req, attempt, deadline))
            };
            match outcome {
                Ok(Ok((tier, edges))) => {
                    self.breaker.record_success();
                    return Ok(Response {
                        id: req.id,
                        node: req.node,
                        prediction,
                        tier,
                        degraded: false,
                        edges,
                    });
                }
                Ok(Err(e @ ServeError::DeadlineExceeded { .. })) => {
                    // The budget is spent — retrying cannot help. Recovery
                    // answers what it still can (predict-only); without
                    // recovery the breach is the response.
                    return if self.cfg.recovery {
                        Ok(self.predict_only(req, prediction, true))
                    } else {
                        Err(e)
                    };
                }
                Ok(Err(e)) => return Err(e),
                Err(panic_msg) => {
                    metrics::SERVE_PANIC_ISOLATED.incr();
                    self.breaker.record_failure();
                    ses_obs::info!(
                        "serve: request {} attempt {attempt} panicked ({panic_msg}); isolated",
                        req.id
                    );
                    if attempt < self.cfg.max_retries && !deadline.expired() {
                        metrics::SERVE_RETRIES.incr();
                        self.lock_backoff().sleep(attempt);
                        attempt += 1;
                        continue;
                    }
                    return self.degraded_ladder(req, prediction, deadline);
                }
            }
        }
    }

    /// The instrumented full SES pipeline: extract → (cache probe) →
    /// encode → mask → rank, deadline-checked after every stage. Returns
    /// the tier ([`Tier::Full`] or a healthy [`Tier::Cache`] hit) with the
    /// ranked edges.
    fn full_pipeline(
        &self,
        req: &Request,
        attempt: u32,
        deadline: &Deadline,
    ) -> Result<(Tier, Explanation), ServeError> {
        if attempt == 0 && self.fault_panics_request(req.id) {
            // lint:allow(no-unwrap): injected fault — the drill asserts this panic
            panic!("injected serve fault: panic@request-{}", req.id);
        }
        let graph = &self.artifact.graph;
        let k = self.artifact.k;

        let sub = stage("extract", || {
            self.maybe_stall(ServeStage::Extract, deadline);
            Subgraph::ego(graph, req.node, k)
        });
        deadline.check("extract")?;

        let (key, local_edges) = subgraph_key(&sub, req.node, k);
        match self.cache.get(key) {
            Lookup::Hit(edges) => return Ok((Tier::Cache, edges)),
            Lookup::Poisoned if !self.cfg.recovery => return Err(ServeError::CachePoisoned),
            // Poisoned with recovery on: the entry is already evicted and
            // counted; recompute below exactly like a miss.
            Lookup::Poisoned | Lookup::Miss => {}
        }

        let relevance = stage("encode", || {
            self.maybe_stall(ServeStage::Encode, deadline);
            let expl = &self.artifact.explanations;
            sub.global_of
                .iter()
                .enumerate()
                .map(|(local, &global)| {
                    if local == sub.center_local {
                        1.0
                    } else {
                        expl.edge_weight(req.node, global)
                    }
                })
                .collect::<Vec<f32>>()
        });
        deadline.check("encode")?;

        let mut edges = stage("mask", || {
            self.maybe_stall(ServeStage::Mask, deadline);
            local_edges
                .iter()
                .map(|&(lu, lv)| {
                    let (gu, gv) = sub.to_global_edge(lu, lv);
                    (gu, gv, relevance[lu] * relevance[lv])
                })
                .collect::<Explanation>()
        });
        deadline.check("mask")?;

        stage("rank", || {
            self.maybe_stall(ServeStage::Rank, deadline);
            edges.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        });
        deadline.check("rank")?;

        self.cache.put(key, edges.clone());
        Ok((Tier::Full, edges))
    }

    /// The degradation ladder (breaker open, or retries exhausted): cached
    /// explanation → saliency fallback → predict-only, each rung counted.
    fn degraded_ladder(
        &self,
        req: &Request,
        prediction: usize,
        deadline: &Deadline,
    ) -> Result<Response, ServeError> {
        if deadline.check("ladder").is_err() {
            // No budget left for any explanation work.
            return Ok(self.predict_only(req, prediction, true));
        }
        let graph = &self.artifact.graph;
        let k = self.artifact.k;
        let sub = Subgraph::ego(graph, req.node, k);
        let (key, _) = subgraph_key(&sub, req.node, k);
        match self.cache.get(key) {
            Lookup::Hit(edges) => {
                metrics::SERVE_DEGRADED_CACHE.incr();
                return Ok(Response {
                    id: req.id,
                    node: req.node,
                    prediction,
                    tier: Tier::Cache,
                    degraded: true,
                    edges,
                });
            }
            Lookup::Poisoned if !self.cfg.recovery => return Err(ServeError::CachePoisoned),
            Lookup::Poisoned | Lookup::Miss => {}
        }
        if let Some(table) = &self.artifact.saliency {
            if !deadline.expired() {
                let mut edges = table.explain_node(graph, req.node);
                edges.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
                metrics::SERVE_DEGRADED_SALIENCY.incr();
                return Ok(Response {
                    id: req.id,
                    node: req.node,
                    prediction,
                    tier: Tier::Saliency,
                    degraded: true,
                    edges,
                });
            }
        }
        Ok(self.predict_only(req, prediction, true))
    }

    fn predict_only(&self, req: &Request, prediction: usize, degraded: bool) -> Response {
        metrics::SERVE_DEGRADED_PREDICT_ONLY.incr();
        Response {
            id: req.id,
            node: req.node,
            prediction,
            tier: Tier::PredictOnly,
            degraded,
            edges: Vec::new(),
        }
    }

    fn fault_panics_request(&self, id: u64) -> bool {
        self.cfg
            .fault
            .is_some_and(|f| f.panic_request() == Some(id))
    }

    /// Injected `slow-stage@<stage>` fault: stall past the remaining
    /// deadline budget so the next boundary check breaches. Routed through
    /// the sanctioned [`backoff::sleep_for`] site.
    fn maybe_stall(&self, here: ServeStage, deadline: &Deadline) {
        if self.cfg.fault.and_then(|f| f.slow_stage()) == Some(here) {
            backoff::sleep_for(Duration::from_nanos(
                deadline.remaining_ns().saturating_add(200_000),
            ));
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Request>> {
        // lint:allow(no-unwrap): queue ops are push/pop only; no panic can
        // poison this mutex
        self.queue.lock().expect("queue mutex poisoned")
    }

    fn lock_backoff(&self) -> std::sync::MutexGuard<'_, Backoff> {
        // lint:allow(no-unwrap): backoff ops are arithmetic + sleep; no
        // panic can poison this mutex
        self.backoff.lock().expect("backoff mutex poisoned")
    }
}

/// Content key + canonical local edge list of a computation subgraph. The
/// local `(lu, lv)` pairs (with `lu < lv`) feed the mask stage; the key
/// hashes the *global* node/edge content order-independently.
fn subgraph_key(sub: &Subgraph, center: usize, k: usize) -> (u64, Vec<(usize, usize)>) {
    let mut local_edges = Vec::new();
    let mut global_edges = Vec::new();
    for lu in 0..sub.len() {
        for &lv in sub.graph.neighbors(lu) {
            if lu < lv {
                local_edges.push((lu, lv));
                global_edges.push(sub.to_global_edge(lu, lv));
            }
        }
    }
    (
        content_key(center, k, &sub.global_of, &global_edges),
        local_edges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_graph::Graph;
    use ses_tensor::Matrix;

    fn small_server(cfg: ServeConfig) -> Server {
        let graph = Graph::new(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            Matrix::from_vec(6, 2, (0..12).map(|i| i as f32 * 0.1).collect()),
            vec![0, 0, 0, 1, 1, 1],
        );
        Server::new(ModelArtifact::synthetic(graph, 2, 7), cfg)
    }

    #[test]
    fn healthy_request_serves_full_then_cache() {
        ses_obs::set_enabled_override(Some(true));
        let s = small_server(ServeConfig::default());
        let r0 = s.serve_one(0).expect("full");
        assert_eq!(r0.tier, Tier::Full);
        assert!(!r0.degraded);
        assert!(!r0.edges.is_empty());
        // Ranked descending.
        for w in r0.edges.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        let r1 = s.serve_one(0).expect("cache");
        assert_eq!(r1.tier, Tier::Cache);
        assert!(!r1.degraded, "healthy cache hit is not degraded");
        assert_eq!(r1.edges, r0.edges);
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn full_queue_sheds_newest() {
        ses_obs::set_enabled_override(Some(true));
        let s = small_server(ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let shed_before = metrics::SERVE_SHED.get();
        assert!(s.submit(0).is_ok());
        assert!(s.submit(1).is_ok());
        let e = s.submit(2).expect_err("third submit must shed");
        assert_eq!(e, ServeError::QueueFull { capacity: 2 });
        assert_eq!(metrics::SERVE_SHED.get(), shed_before + 1);
        assert_eq!(s.queue_len(), 2, "queued work untouched by the shed");
        // The queue drains normally afterwards.
        assert!(s.run_next().expect("req 0").1.is_ok());
        assert!(s.run_next().expect("req 1").1.is_ok());
        assert!(s.run_next().is_none());
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn unknown_node_is_a_typed_error() {
        ses_obs::set_enabled_override(Some(true));
        let s = small_server(ServeConfig::default());
        assert_eq!(
            s.serve_one(99).expect_err("out of range"),
            ServeError::UnknownNode { node: 99 }
        );
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn injected_panic_is_isolated_and_retried() {
        ses_obs::set_enabled_override(Some(true));
        let fault = FaultSpec::parse("panic@request-0").expect("valid");
        let s = small_server(ServeConfig {
            fault: Some(fault),
            max_retries: 2,
            backoff_base_ns: 1_000,
            backoff_max_ns: 10_000,
            ..ServeConfig::default()
        });
        let isolated_before = metrics::SERVE_PANIC_ISOLATED.get();
        let retries_before = metrics::SERVE_RETRIES.get();
        let r = s.serve_one(0).expect("retry succeeds");
        assert_eq!(r.tier, Tier::Full, "second attempt serves full");
        assert!(metrics::SERVE_PANIC_ISOLATED.get() > isolated_before);
        assert!(metrics::SERVE_RETRIES.get() > retries_before);
        // Subsequent requests are unaffected.
        assert!(s.serve_one(3).is_ok());
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn slow_stage_breaches_deadline_and_degrades() {
        ses_obs::set_enabled_override(Some(true));
        let fault = FaultSpec::parse("slow-stage@encode").expect("valid");
        let s = small_server(ServeConfig {
            fault: Some(fault),
            deadline_ns: 2_000_000, // 2ms
            ..ServeConfig::default()
        });
        let breach_before = metrics::SERVE_DEADLINE_BREACH.get();
        let r = s.serve_one(0).expect("recovery answers predict-only");
        assert_eq!(r.tier, Tier::PredictOnly);
        assert!(r.degraded);
        assert!(metrics::SERVE_DEADLINE_BREACH.get() > breach_before);
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn slow_stage_without_recovery_is_a_typed_breach() {
        ses_obs::set_enabled_override(Some(true));
        let fault = FaultSpec::parse("slow-stage@mask").expect("valid");
        let s = small_server(ServeConfig {
            fault: Some(fault),
            deadline_ns: 2_000_000,
            recovery: false,
            ..ServeConfig::default()
        });
        assert_eq!(
            s.serve_one(0).expect_err("hard breach"),
            ServeError::DeadlineExceeded { stage: "mask" }
        );
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn cache_poison_recovers_by_recompute() {
        ses_obs::set_enabled_override(Some(true));
        let fault = FaultSpec::parse("cache-poison").expect("valid");
        let s = small_server(ServeConfig {
            fault: Some(fault),
            ..ServeConfig::default()
        });
        let r0 = s.serve_one(0).expect("full, poisoned write");
        assert_eq!(r0.tier, Tier::Full);
        let poisoned_before = metrics::SERVE_CACHE_POISONED.get();
        let r1 = s.serve_one(0).expect("poison detected, recomputed");
        assert_eq!(r1.tier, Tier::Full, "recomputed, not served from cache");
        assert_eq!(r1.edges, r0.edges);
        assert_eq!(metrics::SERVE_CACHE_POISONED.get(), poisoned_before + 1);
        // Third time: the clean rewrite serves from cache.
        let r2 = s.serve_one(0).expect("clean cache");
        assert_eq!(r2.tier, Tier::Cache);
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn cache_poison_without_recovery_is_a_hard_error() {
        ses_obs::set_enabled_override(Some(true));
        let fault = FaultSpec::parse("cache-poison").expect("valid");
        let s = small_server(ServeConfig {
            fault: Some(fault),
            recovery: false,
            ..ServeConfig::default()
        });
        let _ = s.serve_one(0).expect("first request computes cleanly");
        assert_eq!(
            s.serve_one(0).expect_err("poisoned hit is fatal"),
            ServeError::CachePoisoned
        );
        ses_obs::set_enabled_override(None);
    }
}
