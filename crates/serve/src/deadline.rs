//! Cooperative request deadlines.
//!
//! A [`Deadline`] is a budget in nanoseconds started at admission. The
//! pipeline never preempts work; instead each stage boundary calls
//! [`Deadline::check`], which fails with a typed
//! [`ServeError::DeadlineExceeded`] naming the stage the budget died in and
//! moves the `serve.deadline.breach` counter. Cooperative checking keeps
//! the runtime lock-free and the failure point attributable — the cost is
//! that one slow stage overshoots by its own duration, which the
//! degradation ladder absorbs (the breached request is answered
//! predict-only instead of erroring, unless recovery is off).

use ses_obs::metrics;
use ses_obs::Stopwatch;

use crate::error::ServeError;

/// A running deadline budget for one request.
#[derive(Debug)]
pub struct Deadline {
    sw: Stopwatch,
    budget_ns: u64,
}

impl Deadline {
    /// Starts a deadline with the given budget. A budget of 0 is already
    /// expired — useful for "no time left" tests and drills.
    pub fn start(budget_ns: u64) -> Self {
        Self {
            sw: Stopwatch::start(),
            budget_ns,
        }
    }

    /// Nanoseconds consumed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.sw.elapsed_ns()
    }

    /// Nanoseconds of budget remaining (0 when expired).
    pub fn remaining_ns(&self) -> u64 {
        self.budget_ns.saturating_sub(self.sw.elapsed_ns())
    }

    /// True when the budget is spent.
    pub fn expired(&self) -> bool {
        self.remaining_ns() == 0
    }

    /// Stage-boundary check: `Ok` while budget remains, else the typed
    /// breach error. Each failed check counts one `serve.deadline.breach`.
    pub fn check(&self, stage: &'static str) -> Result<(), ServeError> {
        if self.expired() {
            metrics::SERVE_DEADLINE_BREACH.incr();
            Err(ServeError::DeadlineExceeded { stage })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_budget_passes_checks() {
        let d = Deadline::start(u64::MAX);
        assert!(!d.expired());
        assert_eq!(d.check("extract"), Ok(()));
        assert!(d.remaining_ns() > 0);
    }

    #[test]
    fn zero_budget_is_expired_and_names_the_stage() {
        ses_obs::set_enabled_override(Some(true));
        let before = metrics::SERVE_DEADLINE_BREACH.get();
        let d = Deadline::start(0);
        assert!(d.expired());
        assert_eq!(
            d.check("mask"),
            Err(ServeError::DeadlineExceeded { stage: "mask" })
        );
        assert_eq!(metrics::SERVE_DEADLINE_BREACH.get(), before + 1);
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn elapsed_eventually_exceeds_tiny_budget() {
        let d = Deadline::start(1);
        while !d.expired() {
            std::hint::spin_loop();
        }
        assert_eq!(d.remaining_ns(), 0);
    }
}
