//! The frozen model artifact a server loads at startup.
//!
//! Serving is forward-only: no tape, no optimiser, no mutation. A
//! [`ModelArtifact`] bundles everything the request path reads — the graph,
//! the per-node predictions, the global SES masks ([`Explanations`]), an
//! optional owned gradient-saliency table (degradation-ladder step 3), an
//! optional compiled [`InferencePlan`] (provenance that the artifact's tape
//! passed translation validation), and optionally the checkpoint it was
//! restored from (resolved through the corruption-hardened
//! [`ses_resilience::latest_checkpoint`], so a torn newest rotation file
//! falls back to the previous copy instead of failing startup).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_core::{ExplainStepIr, Explanations};
use ses_explain::SaliencyTable;
use ses_graph::Graph;
use ses_ir::{CompileError, InferencePlan};
use ses_resilience::{latest_checkpoint, CheckpointError, TrainCheckpoint};
use ses_tensor::Matrix;

/// Frozen serving state. See the module docs.
pub struct ModelArtifact {
    /// The served graph.
    pub graph: Graph,
    /// Per-node predicted class.
    pub predictions: Vec<usize>,
    /// Global SES masks (feature + k-hop structure).
    pub explanations: Explanations,
    /// Neighbourhood radius the structure mask is defined over.
    pub k: usize,
    /// Owned gradient-saliency fallback (ladder step 3), when available.
    pub saliency: Option<SaliencyTable>,
    /// Compiled inference plan, when the artifact was plan-checked.
    pub plan: Option<InferencePlan>,
    /// `(path, epoch)` of the checkpoint the artifact restored, if any.
    pub checkpoint: Option<(PathBuf, u64)>,
}

impl ModelArtifact {
    /// Builds an artifact from already-frozen parts. Predictions must cover
    /// every node.
    ///
    /// # Panics
    /// Panics when `predictions.len() != graph.n_nodes()` — serving an
    /// unpredictable node is not a recoverable condition.
    pub fn from_parts(
        graph: Graph,
        predictions: Vec<usize>,
        explanations: Explanations,
        k: usize,
    ) -> Self {
        assert_eq!(
            predictions.len(),
            graph.n_nodes(),
            "one prediction per node"
        );
        Self {
            graph,
            predictions,
            explanations,
            k,
            saliency: None,
            plan: None,
            checkpoint: None,
        }
    }

    /// A deterministic synthetic artifact over `graph`: structure-mask
    /// weights and feature mask drawn from `seed`, predictions equal to the
    /// graph labels, and a saliency table over the same k-hop structure.
    /// This is the fixture drills, benches, and tests serve — real enough
    /// to exercise every stage (the k-hop structure is the real one), with
    /// no training in the loop.
    pub fn synthetic(graph: Graph, k: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let khop = ses_graph::khop_structure(&graph, k);
        let structure_weights: Vec<f32> = (0..khop.nnz())
            .map(|_| 0.05 + 0.9 * rng.gen::<f32>())
            .collect();
        let n = graph.n_nodes();
        let f = graph.n_features();
        let feature_mask = Matrix::from_vec(
            n,
            f,
            (0..n * f).map(|_| 0.05 + 0.9 * rng.gen::<f32>()).collect(),
        );
        let saliency_scores: Vec<f32> = (0..khop.nnz()).map(|_| rng.gen::<f32>()).collect();
        let saliency = SaliencyTable::from_scores(Arc::clone(&khop), saliency_scores);
        let predictions = graph.labels().to_vec();
        let explanations = Explanations {
            feature_mask,
            khop,
            structure_weights,
        };
        let mut artifact = Self::from_parts(graph, predictions, explanations, k);
        artifact.saliency = Some(saliency);
        artifact
    }

    /// Restores checkpoint provenance: resolves the newest *valid*
    /// checkpoint reachable from `base` (corrupt newest rotations are
    /// skipped with a `trainer.recover.corrupt_ckpt_skipped` count), reads
    /// it, and records `(path, epoch)`. The parameters themselves are not
    /// applied — the artifact's masks are already frozen — but a server
    /// that claims to serve epoch N must be able to prove N came off disk.
    pub fn attach_checkpoint(&mut self, base: &Path) -> Result<u64, CheckpointError> {
        let path = latest_checkpoint(base).ok_or_else(|| CheckpointError::Io {
            path: base.to_path_buf(),
            msg: "no valid checkpoint found (all candidates corrupt or missing)".to_string(),
        })?;
        let ckpt = TrainCheckpoint::read_from(&path)?;
        self.checkpoint = Some((path, ckpt.epoch));
        Ok(ckpt.epoch)
    }

    /// Plan-checks the artifact: compiles `step`'s exported tape through
    /// the translation-validated `ses-ir` pipeline and stores the resulting
    /// [`InferencePlan`]. Startup fails loudly on a rejected rewrite — a
    /// serving binary must not run on an artifact whose inference program
    /// failed validation.
    pub fn attach_plan(&mut self, step: &ExplainStepIr) -> Result<&InferencePlan, CompileError> {
        let plan = ses_ir::compile(&step.ir, Some(step.loss), &step.outputs)?;
        self.plan = Some(plan);
        // lint:allow(no-unwrap): stored on the line above
        Ok(self.plan.as_ref().expect("just stored"))
    }

    /// The predicted class of `node`, if it is in the served graph.
    pub fn prediction(&self, node: usize) -> Option<usize> {
        self.predictions.get(node).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Graph {
        Graph::new(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
            Matrix::from_vec(6, 2, (0..12).map(|i| i as f32 * 0.1).collect()),
            vec![0, 0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn synthetic_artifact_is_deterministic_and_complete() {
        let a = ModelArtifact::synthetic(small_graph(), 2, 9);
        let b = ModelArtifact::synthetic(small_graph(), 2, 9);
        assert_eq!(
            a.explanations.structure_weights,
            b.explanations.structure_weights
        );
        assert_eq!(a.predictions, b.predictions);
        assert!(a.saliency.is_some());
        assert_eq!(a.prediction(0), Some(0));
        assert_eq!(a.prediction(5), Some(1));
        assert_eq!(a.prediction(6), None);
        let c = ModelArtifact::synthetic(small_graph(), 2, 10);
        assert_ne!(
            a.explanations.structure_weights, c.explanations.structure_weights,
            "different seed, different masks"
        );
    }

    #[test]
    fn attach_checkpoint_records_provenance() {
        let dir = std::env::temp_dir().join(format!("ses-serve-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let base = dir.join("model.ckpt");
        let ckpt = TrainCheckpoint {
            epoch: 12,
            adam_steps: 36,
            lr: 0.01,
            rng_state: [1, 2, 3, 4],
            params: Vec::new(),
        };
        ckpt.write_atomic(&ses_resilience::rotated_path(&base, 12), false)
            .expect("write");
        let mut a = ModelArtifact::synthetic(small_graph(), 2, 0);
        let epoch = a.attach_checkpoint(&base).expect("attach");
        assert_eq!(epoch, 12);
        assert!(a.checkpoint.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
