//! ses-serve: a fault-isolated explanation-serving runtime.
//!
//! Training produces artifacts; *serving* answers requests against them —
//! and a request path has failure modes training never sees: tail-latency
//! blowups, overload, a poisoned cache entry, one request panicking a
//! worker that fifty other requests share. This crate is the forward-only
//! runtime that serves SES predictions *with* their explanations while
//! treating those failures as routine inputs:
//!
//! - **Deadlines** ([`Deadline`]): every request carries a budget,
//!   cooperatively checked at each stage boundary of the explain pipeline;
//!   a breach is a typed [`ServeError::DeadlineExceeded`] naming the stage
//!   that spent the budget.
//! - **Load shedding** ([`Server::submit`]): admission is a bounded queue;
//!   a full queue rejects the newest request (`serve.shed`) instead of
//!   letting latency grow without bound.
//! - **Isolation** ([`ses_resilience::run_request_isolated`]): a panicking
//!   request is caught at the request boundary, counted, retried with
//!   jittered exponential backoff ([`Backoff`]), and fed to the
//!   [`CircuitBreaker`] — it never takes the process down.
//! - **Graceful degradation** (the ladder, [`Tier`]): full SES explanation
//!   → cached explanation ([`ExplanationCache`], content-hash-keyed and
//!   checksummed) → gradient-saliency fallback → prediction-only. Every
//!   step down is counted (`serve.degraded.*`).
//!
//! The `SES_FAULT` grammar drills each net: `slow-stage@<stage>` stalls one
//! pipeline stage past the deadline, `panic@request-<n>` panics inside one
//! request, `cache-poison` corrupts the next cache write. With
//! `SES_RECOVERY=off` the same faults are fatal — the drill asserts the
//! nets are real by removing them.

pub mod artifact;
pub mod backoff;
pub mod breaker;
pub mod cache;
pub mod deadline;
pub mod error;
pub mod runtime;

pub use artifact::ModelArtifact;
pub use backoff::Backoff;
pub use breaker::{CircuitBreaker, Route};
pub use cache::{content_key, Explanation, ExplanationCache, Lookup};
pub use deadline::Deadline;
pub use error::ServeError;
pub use runtime::{Request, Response, ServeConfig, Server, Tier};
