//! Typed serving errors.
//!
//! Every way a request can fail has its own variant, so drills and tests
//! assert on *which* net caught the fall — a `String` error could not
//! distinguish a shed request from a blown deadline.

use std::fmt;

/// Why a serving request failed (or was refused).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded admission queue was full; the request was shed at the
    /// door (reject-newest) and never admitted.
    QueueFull {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The deadline budget ran out, checked cooperatively at a stage
    /// boundary. `stage` names where the budget died: one of the explain
    /// stages (`extract`/`encode`/`mask`/`rank`) or a ladder step.
    DeadlineExceeded {
        /// Stage boundary at which the budget was found exhausted.
        stage: &'static str,
    },
    /// A request attempt panicked and recovery is off (with recovery on,
    /// the panic is isolated and the request degrades instead).
    RequestPanicked {
        /// The captured panic message.
        msg: String,
    },
    /// A cached explanation failed its integrity checksum and recovery is
    /// off (with recovery on, the entry is evicted and recomputed).
    CachePoisoned,
    /// The requested node id is outside the served graph.
    UnknownNode {
        /// The offending node id.
        node: usize,
    },
    /// The runtime exhausted its retry budget and every ladder tier was
    /// unavailable (only reachable with degradation disabled).
    Exhausted,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(
                    f,
                    "admission queue full (capacity {capacity}); request shed"
                )
            }
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at stage `{stage}`")
            }
            ServeError::RequestPanicked { msg } => {
                write!(f, "request panicked with recovery off: {msg}")
            }
            ServeError::CachePoisoned => {
                write!(
                    f,
                    "cached explanation failed its checksum with recovery off"
                )
            }
            ServeError::UnknownNode { node } => {
                write!(f, "node {node} is outside the served graph")
            }
            ServeError::Exhausted => {
                write!(f, "retries exhausted and no degradation tier available")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stage() {
        let e = ServeError::DeadlineExceeded { stage: "encode" };
        assert!(e.to_string().contains("`encode`"));
    }
}
