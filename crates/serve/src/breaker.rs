//! Request-counting circuit breaker for the full-explain path.
//!
//! Repeated stage failures (panics, injected faults) mean the expensive
//! path is currently poisoned; hammering it again burns deadline budget per
//! request and keeps failure counters climbing. The breaker trips after
//! `failure_threshold` *consecutive* failures and stays open for
//! `open_requests` subsequent requests, during which the runtime skips the
//! full pipeline and enters the degradation ladder directly. The request
//! after the cooldown is the half-open probe: it attempts the full path
//! again, and its outcome closes or re-opens the breaker. Counting requests
//! instead of wall-clock keeps drills deterministic (no time dependence).
//!
//! All state is atomics under a mutex-free protocol: transitions are
//! last-write-wins, which is acceptable because the breaker is a load
//! shedding heuristic, not a correctness gate — a racy extra probe or an
//! extra degraded request is benign.

use std::sync::atomic::{AtomicU64, Ordering};

use ses_obs::metrics;

/// Breaker decision for one incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Breaker closed (or half-open probe): attempt the full pipeline.
    Full,
    /// Breaker open: skip straight to the degradation ladder.
    Degraded,
}

/// See the module docs.
pub struct CircuitBreaker {
    failure_threshold: u64,
    open_requests: u64,
    consecutive_failures: AtomicU64,
    /// Remaining open-state requests; 0 = closed or half-open.
    open_remaining: AtomicU64,
}

impl CircuitBreaker {
    /// A breaker tripping after `failure_threshold` consecutive failures
    /// and cooling down for `open_requests` requests. A threshold of 0 is
    /// clamped to 1 (a breaker that trips on nothing would never protect).
    pub fn new(failure_threshold: u64, open_requests: u64) -> Self {
        Self {
            failure_threshold: failure_threshold.max(1),
            open_requests: open_requests.max(1),
            consecutive_failures: AtomicU64::new(0),
            open_remaining: AtomicU64::new(0),
        }
    }

    /// Routes one incoming request, consuming one cooldown slot when open.
    pub fn route(&self) -> Route {
        // ordering: heuristic routing decision; stale reads shed one extra request, which is benign
        let open = self.open_remaining.load(Ordering::Relaxed);
        if open == 0 {
            return Route::Full;
        }
        // ordering: cooldown countdown is a tally, not a synchronisation point
        self.open_remaining.store(open - 1, Ordering::Relaxed);
        Route::Degraded
    }

    /// Records a successful full-path attempt: closes the breaker.
    pub fn record_success(&self) {
        // ordering: breaker reset; no payload published
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// Records a failed full-path attempt; trips the breaker (and counts
    /// `serve.breaker.open`) when the consecutive-failure threshold is hit.
    pub fn record_failure(&self) {
        // ordering: failure tally; threshold check tolerates racy counts
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.failure_threshold {
            self.open_remaining
                .store(self.open_requests, Ordering::Relaxed); // ordering: advisory routing state

            // Re-arm: the half-open probe after cooldown re-trips on one
            // failure rather than needing a fresh run of `threshold`.
            self.consecutive_failures
                .store(self.failure_threshold, Ordering::Relaxed); // ordering: advisory state
            metrics::SERVE_BREAKER_OPEN.incr();
        }
    }

    /// True while the breaker is open (cooldown slots remain).
    pub fn is_open(&self) -> bool {
        // ordering: telemetry read; staleness is fine
        self.open_remaining.load(Ordering::Relaxed) > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_and_cools_down() {
        ses_obs::set_enabled_override(Some(true));
        let b = CircuitBreaker::new(2, 3);
        assert_eq!(b.route(), Route::Full);
        b.record_failure();
        assert_eq!(b.route(), Route::Full, "one failure is below threshold");
        b.record_failure();
        assert!(b.is_open());
        assert_eq!(b.route(), Route::Degraded);
        assert_eq!(b.route(), Route::Degraded);
        assert_eq!(b.route(), Route::Degraded);
        // Cooldown exhausted: half-open probe goes full.
        assert_eq!(b.route(), Route::Full);
        b.record_success();
        assert!(!b.is_open());
        assert_eq!(b.route(), Route::Full);
        ses_obs::set_enabled_override(None);
    }

    #[test]
    fn half_open_probe_failure_retrips_immediately() {
        ses_obs::set_enabled_override(Some(true));
        let b = CircuitBreaker::new(3, 1);
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.route(), Route::Degraded);
        assert_eq!(b.route(), Route::Full, "half-open probe");
        let before = metrics::SERVE_BREAKER_OPEN.get();
        b.record_failure();
        assert!(b.is_open(), "single probe failure re-opens");
        assert_eq!(metrics::SERVE_BREAKER_OPEN.get(), before + 1);
        ses_obs::set_enabled_override(None);
    }
}
