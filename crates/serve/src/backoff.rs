//! Jittered exponential backoff — the workspace's one sanctioned blocking
//! sleep.
//!
//! Retrying a transient fault immediately usually re-hits the same
//! contention that caused it, and a fleet of workers retrying on the same
//! schedule synchronises into waves. The standard fix is exponential
//! backoff with *jitter*: attempt `k` waits `base * 2^k` scaled by a random
//! factor in `[0.5, 1.0]`, capped at `max`. The jitter source is a seeded
//! [`StdRng`] (workspace rule: no `thread_rng`), so a given seed produces a
//! reproducible schedule — drills and tests stay deterministic.
//!
//! The `no-blocking-sleep-in-lib` lint rule forbids `std::thread::sleep`
//! in library code everywhere except this file: sleeping on a worker is a
//! deliberate act with throughput consequences, and routing every such
//! sleep through [`Backoff`] keeps them enumerable, jittered, and capped.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exponential backoff schedule with multiplicative jitter.
#[derive(Debug)]
pub struct Backoff {
    rng: StdRng,
    base_ns: u64,
    max_ns: u64,
}

impl Backoff {
    /// A schedule starting at `base_ns` and capped at `max_ns`, jittered
    /// from `seed`.
    pub fn new(seed: u64, base_ns: u64, max_ns: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            base_ns,
            max_ns: max_ns.max(base_ns),
        }
    }

    /// The jittered delay for retry `attempt` (0-based). Pure computation —
    /// callers that cannot block (tests, simulations) use this directly.
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let exp = self.base_ns.saturating_mul(1u64 << attempt.min(20));
        let capped = exp.min(self.max_ns);
        // Jitter factor in [0.5, 1.0): full jitter halves the worst-case
        // herd without ever waiting longer than the deterministic schedule.
        let factor = 0.5 + 0.5 * self.rng.gen::<f64>();
        // lint:allow(no-narrowing-cast): ns fits f64 mantissa at these magnitudes
        Duration::from_nanos((capped as f64 * factor) as u64)
    }

    /// Blocks the current thread for the jittered delay of `attempt`.
    pub fn sleep(&mut self, attempt: u32) {
        sleep_for(self.delay(attempt));
    }
}

/// The one sanctioned blocking sleep (see module docs). Fault injection
/// (`slow-stage@<stage>`) also routes through here so the stall shows up in
/// the same audited place.
pub fn sleep_for(d: Duration) {
    if !d.is_zero() {
        std::thread::sleep(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let mut b = Backoff::new(7, 1_000, 50_000);
        let d0 = b.delay(0);
        assert!(d0 >= Duration::from_nanos(500) && d0 < Duration::from_nanos(1_000));
        let d4 = b.delay(4); // 16_000 ns pre-jitter
        assert!(d4 >= Duration::from_nanos(8_000) && d4 < Duration::from_nanos(16_000));
        let d20 = b.delay(20); // capped at 50_000 pre-jitter
        assert!(d20 <= Duration::from_nanos(50_000));
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(42, 1_000, 1_000_000);
        let mut b = Backoff::new(42, 1_000, 1_000_000);
        for attempt in 0..6 {
            assert_eq!(a.delay(attempt), b.delay(attempt));
        }
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let mut b = Backoff::new(1, u64::MAX / 2, u64::MAX);
        let d = b.delay(u32::MAX);
        assert!(d <= Duration::from_nanos(u64::MAX));
    }

    #[test]
    fn zero_sleep_returns_immediately() {
        sleep_for(Duration::ZERO);
    }
}
