//! Property tests for the explanation cache (satellite of the serving
//! runtime): the content-hash key is deterministic and invariant to
//! enumeration order, eviction honours both the entry and byte caps on any
//! operation sequence, and the `serve.cache.{hit,miss,evict}` counters
//! reconcile exactly with the operations performed.

use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ses_obs::metrics;
use ses_serve::cache::{content_key, Explanation, ExplanationCache, Lookup};

/// The cache counters are process-global and the test harness runs tests on
/// parallel threads; counter-delta assertions serialise on this lock. Tests
/// that only *move* counters (without asserting deltas) take it too, so a
/// reconciliation window never sees foreign increments.
fn counter_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Fisher–Yates with a seeded rng (workspace rule: no thread_rng).
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0..=i);
        out.swap(i, j);
    }
    out
}

fn edges_of_len(n: usize) -> Explanation {
    (0..n).map(|i| (i, i + 1, i as f32 * 0.25)).collect()
}

/// The vendored proptest stub has no tuple strategies, so fuzzed edge lists
/// and op sequences arrive as packed `u64`s and are decoded here.
fn decode_edge(x: u64) -> (usize, usize) {
    ((x & 0xff) as usize, ((x >> 8) & 0xff) as usize)
}

/// One cache op: `(key, payload_len, is_put)` unpacked from fuzz bits.
fn decode_op(x: u64, key_space: u64, max_len: usize) -> (u64, usize, bool) {
    (
        x & (key_space - 1),
        1 + ((x >> 8) as usize % max_len),
        (x >> 16) & 1 == 1,
    )
}

proptest! {
    /// The key must not depend on how the subgraph was enumerated: any
    /// permutation of the node list, any permutation of the edge list, and
    /// any per-edge orientation flip produce the same key.
    #[test]
    fn content_key_is_enumeration_order_invariant(
        center in 0usize..64,
        k in 1usize..4,
        nodes in proptest::collection::vec(0usize..256, 1..24),
        packed_edges in proptest::collection::vec(0u64..u64::MAX, 0..24),
        seed in 0u64..u64::MAX,
    ) {
        let edges: Vec<(usize, usize)> = packed_edges.iter().map(|&x| decode_edge(x)).collect();
        let base = content_key(center, k, &nodes, &edges);
        // Deterministic: same input, same key.
        prop_assert_eq!(base, content_key(center, k, &nodes, &edges));
        let nodes2 = shuffled(&nodes, seed);
        let mut edges2 = shuffled(&edges, seed ^ 0x9e37_79b9);
        let mut flip = StdRng::seed_from_u64(seed.wrapping_mul(3));
        for e in edges2.iter_mut() {
            if flip.gen::<bool>() {
                *e = (e.1, e.0);
            }
        }
        prop_assert_eq!(base, content_key(center, k, &nodes2, &edges2));
    }

    /// Distinct subgraph content should (essentially always) produce a
    /// distinct key: perturbing one node id changes the hash.
    #[test]
    fn content_key_tracks_content(
        center in 0usize..64,
        nodes in proptest::collection::vec(0usize..256, 1..16),
        bump in 1usize..7,
    ) {
        let mut other = nodes.clone();
        other[0] += 256 * bump; // guaranteed outside the generated domain
        prop_assert_ne!(
            content_key(center, 2, &nodes, &[]),
            content_key(center, 2, &other, &[])
        );
    }

    /// After every operation of an arbitrary put/get sequence, both caps
    /// hold and the byte ledger matches the sum of resident entries.
    #[test]
    fn eviction_respects_entry_and_byte_caps(
        max_entries in 0usize..8,
        cap_units in 0usize..12,
        packed_ops in proptest::collection::vec(0u64..u64::MAX, 1..48),
    ) {
        let _guard = counter_lock();
        let unit = std::mem::size_of::<(usize, usize, f32)>() + 64;
        let max_bytes = cap_units * unit;
        let cache = ExplanationCache::new(max_entries, max_bytes);
        for (key, len, is_put) in packed_ops.iter().map(|&x| decode_op(x, 16, 12)) {
            if is_put {
                cache.put(key, edges_of_len(len));
            } else {
                let _ = cache.get(key);
            }
            prop_assert!(cache.len() <= max_entries, "entry cap violated");
            prop_assert!(cache.bytes() <= max_bytes, "byte cap violated");
        }
    }

    /// Counter reconciliation over an arbitrary op sequence: every `get` is
    /// exactly one hit or one miss, and every eviction is counted — the
    /// counter deltas must equal the observed outcomes exactly.
    #[test]
    fn cache_counters_reconcile(
        max_entries in 1usize..6,
        packed_ops in proptest::collection::vec(0u64..u64::MAX, 1..40),
    ) {
        let _guard = counter_lock();
        ses_obs::set_enabled_override(Some(true));
        let cache = ExplanationCache::new(max_entries, usize::MAX);
        let hit_0 = metrics::SERVE_CACHE_HIT.get();
        let miss_0 = metrics::SERVE_CACHE_MISS.get();
        let evict_0 = metrics::SERVE_CACHE_EVICT.get();

        let (mut gets, mut hits) = (0u64, 0u64);
        let mut resident: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut puts_evicting = 0u64;
        for (key, len, is_put) in packed_ops.iter().map(|&x| decode_op(x, 8, 7)) {
            if is_put {
                let was_resident = resident.contains(&key);
                cache.put(key, edges_of_len(len));
                resident.insert(key);
                if !was_resident && resident.len() > max_entries {
                    // Exactly one LRU victim leaves; we don't model which.
                    puts_evicting += 1;
                    prop_assert_eq!(cache.len(), max_entries);
                    // Resync the resident model from the cache's own ledger.
                    resident = (0u64..8).filter(|k| {
                        matches!(cache.get(*k), Lookup::Hit(_))
                    }).collect();
                    gets += 8;
                    hits += cache.len() as u64;
                }
            } else {
                gets += 1;
                match cache.get(key) {
                    Lookup::Hit(_) => {
                        hits += 1;
                        prop_assert!(resident.contains(&key));
                    }
                    Lookup::Miss => prop_assert!(!resident.contains(&key)),
                    Lookup::Poisoned => prop_assert!(false, "nothing armed poison"),
                }
            }
        }
        prop_assert_eq!(
            metrics::SERVE_CACHE_HIT.get() - hit_0,
            hits,
            "every hit counted once"
        );
        prop_assert_eq!(
            metrics::SERVE_CACHE_MISS.get() - miss_0,
            gets - hits,
            "every non-hit get counted as a miss"
        );
        prop_assert_eq!(
            metrics::SERVE_CACHE_EVICT.get() - evict_0,
            puts_evicting,
            "every cap-driven eviction counted once"
        );
        ses_obs::set_enabled_override(None);
    }
}

#[test]
fn poison_counts_are_separate_from_evictions() {
    let _guard = counter_lock();
    ses_obs::set_enabled_override(Some(true));
    let cache = ExplanationCache::new(4, usize::MAX);
    let evict_0 = metrics::SERVE_CACHE_EVICT.get();
    let poison_0 = metrics::SERVE_CACHE_POISONED.get();
    cache.arm_poison();
    cache.put(1, edges_of_len(3));
    assert_eq!(cache.get(1), Lookup::Poisoned);
    assert_eq!(
        metrics::SERVE_CACHE_POISONED.get(),
        poison_0 + 1,
        "integrity discard counted as a poisoning"
    );
    assert_eq!(
        metrics::SERVE_CACHE_EVICT.get(),
        evict_0,
        "…and not as a cap eviction"
    );
    ses_obs::set_enabled_override(None);
}
