//! End-to-end exercise of the graceful-degradation ladder: one server, one
//! request sequence, all four tiers observed in order — full SES explain →
//! healthy cache hit → degraded cache hit → gradient-saliency fallback →
//! predict-only — with the shed / degraded / deadline-breach counters
//! moving exactly as the ladder steps down.

use ses_obs::metrics;
use ses_resilience::FaultSpec;
use ses_serve::{ModelArtifact, ServeConfig, ServeError, Server, Tier};

fn two_triangle_server(cfg: ServeConfig) -> Server {
    let graph = ses_graph::Graph::new(
        6,
        &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)],
        ses_tensor::Matrix::from_vec(6, 2, (0..12).map(|i| i as f32 * 0.1).collect()),
        vec![0, 0, 0, 1, 1, 1],
    );
    Server::new(ModelArtifact::synthetic(graph, 2, 11), cfg)
}

#[test]
fn ladder_steps_down_full_cache_saliency_predict_only() {
    ses_obs::set_enabled_override(Some(true));
    // panic@request-2 with no retries and a hair-trigger breaker: request 2
    // fails its only attempt and every later request routes degraded.
    let server = two_triangle_server(ServeConfig {
        fault: Some(FaultSpec::parse("panic@request-2").expect("valid spec")),
        max_retries: 0,
        breaker_threshold: 1,
        breaker_cooldown: 16,
        ..ServeConfig::default()
    });

    let degraded_cache_0 = metrics::SERVE_DEGRADED_CACHE.get();
    let degraded_saliency_0 = metrics::SERVE_DEGRADED_SALIENCY.get();
    let degraded_predict_0 = metrics::SERVE_DEGRADED_PREDICT_ONLY.get();
    let breach_0 = metrics::SERVE_DEADLINE_BREACH.get();
    let hit_0 = metrics::SERVE_CACHE_HIT.get();
    let isolated_0 = metrics::SERVE_PANIC_ISOLATED.get();
    let breaker_0 = metrics::SERVE_BREAKER_OPEN.get();

    // Rung 1 — request 0: healthy full explanation, cached on the way out.
    let r0 = server.serve_one(0).expect("full");
    assert_eq!(r0.tier, Tier::Full);
    assert!(!r0.degraded);
    assert!(!r0.edges.is_empty());

    // Rung 1.5 — request 1: healthy cache hit; NOT a degradation.
    let r1 = server.serve_one(0).expect("healthy cache hit");
    assert_eq!(r1.tier, Tier::Cache);
    assert!(!r1.degraded);
    assert_eq!(r1.edges, r0.edges);
    assert_eq!(metrics::SERVE_DEGRADED_CACHE.get(), degraded_cache_0);

    // Rung 2 — request 2 panics, is isolated, trips the breaker, and falls
    // to the ladder, which still finds the cached explanation.
    let r2 = server.serve_one(0).expect("degraded cache");
    assert_eq!(r2.tier, Tier::Cache);
    assert!(r2.degraded);
    assert_eq!(r2.edges, r0.edges);
    assert_eq!(metrics::SERVE_PANIC_ISOLATED.get(), isolated_0 + 1);
    assert_eq!(metrics::SERVE_BREAKER_OPEN.get(), breaker_0 + 1);
    assert_eq!(metrics::SERVE_DEGRADED_CACHE.get(), degraded_cache_0 + 1);

    // Rung 3 — request 3: breaker open, uncached node → saliency fallback.
    let r3 = server.serve_one(4).expect("saliency");
    assert_eq!(r3.tier, Tier::Saliency);
    assert!(r3.degraded);
    assert!(!r3.edges.is_empty(), "saliency still explains");
    assert_eq!(
        metrics::SERVE_DEGRADED_SALIENCY.get(),
        degraded_saliency_0 + 1
    );

    // Rung 4 — request 4: breaker open AND a zero deadline → the ladder has
    // no budget for any explanation work; prediction-only, breach counted.
    server
        .submit_with_deadline(5, 0)
        .expect("admission is budget-free");
    let (_, r4) = server.run_next().expect("queued");
    let r4 = r4.expect("predict-only");
    assert_eq!(r4.tier, Tier::PredictOnly);
    assert!(r4.degraded);
    assert!(r4.edges.is_empty());
    assert_eq!(r4.prediction, 1, "prediction survives at the bottom rung");
    assert!(metrics::SERVE_DEADLINE_BREACH.get() > breach_0);
    assert_eq!(
        metrics::SERVE_DEGRADED_PREDICT_ONLY.get(),
        degraded_predict_0 + 1
    );

    // Every degraded response still came from a live process that keeps
    // serving: the cache-hit counter moved and nothing errored.
    assert!(metrics::SERVE_CACHE_HIT.get() >= hit_0 + 2);
    ses_obs::set_enabled_override(None);
}

#[test]
fn shed_then_recover_under_burst() {
    ses_obs::set_enabled_override(Some(true));
    let server = two_triangle_server(ServeConfig {
        queue_capacity: 3,
        ..ServeConfig::default()
    });
    let shed_0 = metrics::SERVE_SHED.get();
    let mut shed = 0;
    for i in 0..5 {
        match server.submit(i % 6) {
            Ok(_) => {}
            Err(ServeError::QueueFull { capacity }) => {
                assert_eq!(capacity, 3);
                shed += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert_eq!(shed, 2, "reject-newest: exactly the overflow is shed");
    assert_eq!(metrics::SERVE_SHED.get(), shed_0 + 2);
    let mut served = 0;
    while let Some((_, result)) = server.run_next() {
        result.expect("admitted requests all complete");
        served += 1;
    }
    assert_eq!(served, 3, "admitted work survives the burst");
    ses_obs::set_enabled_override(None);
}
