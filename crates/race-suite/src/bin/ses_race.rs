//! `ses-race` — model-checked interleaving suite for the SES lock-free
//! runtime.
//!
//! With the `race` feature on, `ses-obs` and `ses-tensor` route their sync
//! primitives through the `ses-race` shim, so every atomic load/store/RMW
//! and lock acquisition in the telemetry and scratch-pool hot paths becomes
//! a scheduling point inside [`ses_race::check`]. Each named check below
//! runs one concurrent scenario over *the real production code* and lets
//! the checker enumerate interleavings, asserting a linearizability
//! invariant at the end of every schedule:
//!
//! * `counter-increments` — no lost `Counter` increments across writers.
//! * `hist-record`        — `LogHistogram` count/sum equal records issued.
//! * `trace-tree`         — a cross-thread trace forms a well-formed tree
//!   and buffers exactly the events issued.
//! * `scratch-pool`       — the scratch pool hands out zeroed buffers and a
//!   shared lease table never double-leases.
//! * `par-harness`        — a model of `par::run_tasks`/`run_isolated`
//!   joins every worker, degrades exactly once on a worker panic, and the
//!   serial rerun neither drops nor duplicates a task.
//!
//! `--seed-defect {lost-increment,torn-snapshot,double-lease,dropped-task}`
//! swaps in a variant with a real concurrency bug; CI asserts those runs
//! exit non-zero and print a minimal failing schedule, which is the suite's
//! own regression test.
//!
//! Without the `race` feature the binary is inert and exits 2 — normal
//! workspace builds must never carry the shim (see docs/CORRECTNESS.md).

#[cfg(feature = "race")]
mod suite {
    use std::panic::AssertUnwindSafe;

    use ses_obs::hist::LogHistogram;
    use ses_obs::metrics::{Counter, ALLOC_SAVED_BYTES, KERNEL_PANIC_DEGRADED};
    use ses_obs::{spans, trace};
    use ses_race::sync::{thread, Arc, AtomicU64, Mutex, Ordering};
    use ses_race::{check, CheckOptions, CheckReport};
    use ses_tensor::scratch;

    /// Total schedules a full clean run must explore; the suite gates on
    /// this so budget tuning can never silently hollow out coverage.
    const MIN_TOTAL_SCHEDULES: u64 = 10_000;

    // Suite-local instruments. Statics so their addresses (and hence their
    // interned model locations) are stable; checks read deltas or reset in
    // the closure prologue because values persist across explored schedules.
    static RACE_COUNTER: Counter = Counter::new("race.counter");
    static RACE_HIST: LogHistogram = LogHistogram::new("race.hist");
    static BAD_COUNTER: AtomicU64 = AtomicU64::new(0);
    static TORN_COUNT: AtomicU64 = AtomicU64::new(0);
    static TORN_SUM: AtomicU64 = AtomicU64::new(0);

    /// Joins a worker, re-raising its panic on the calling (root) task so
    /// the checker reports the worker's own assertion message.
    fn join_ok<T>(h: thread::JoinHandle<T>) -> T {
        match h.join() {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    // -----------------------------------------------------------------
    // counter-increments / seed: lost-increment
    // -----------------------------------------------------------------

    /// Three writers increment one `ses_obs` counter; every increment must
    /// survive. Exercises the real `Counter::incr` fetch-add path.
    fn counter_increments() -> CheckReport {
        check(
            CheckOptions::new("counter-increments").with_max_schedules(4_000),
            || {
                RACE_COUNTER.reset();
                let spawn_three = || {
                    thread::spawn(|| {
                        RACE_COUNTER.incr();
                        RACE_COUNTER.incr();
                        RACE_COUNTER.incr();
                    })
                };
                let h1 = spawn_three();
                let h2 = spawn_three();
                RACE_COUNTER.incr();
                join_ok(h1);
                join_ok(h2);
                assert_eq!(RACE_COUNTER.get(), 7, "lost counter increment");
            },
        )
    }

    /// Seeded defect: a read-modify-write counter done as separate relaxed
    /// load + store. The checker must find the interleaving where one
    /// increment is lost.
    fn seed_lost_increment() -> CheckReport {
        check(
            CheckOptions::new("seed:lost-increment").with_max_schedules(4_000),
            || {
                BAD_COUNTER.store(0, Ordering::Relaxed);
                let bump = || {
                    thread::spawn(|| {
                        let v = BAD_COUNTER.load(Ordering::Relaxed);
                        BAD_COUNTER.store(v + 1, Ordering::Relaxed);
                    })
                };
                let h1 = bump();
                let h2 = bump();
                join_ok(h1);
                join_ok(h2);
                assert_eq!(
                    BAD_COUNTER.load(Ordering::Relaxed),
                    2,
                    "lost increment: counter must equal increments issued"
                );
            },
        )
    }

    // -----------------------------------------------------------------
    // hist-record / seed: torn-snapshot
    // -----------------------------------------------------------------

    /// Two writers record into one `LogHistogram`; after joining, the
    /// count and sum deltas must equal exactly what was issued.
    fn hist_record() -> CheckReport {
        check(
            CheckOptions::new("hist-record").with_max_schedules(4_000),
            || {
                let c0 = RACE_HIST.count();
                let s0 = RACE_HIST.sum();
                let writer = |v: u64| {
                    thread::spawn(move || {
                        RACE_HIST.record(v);
                        RACE_HIST.record(v * 3);
                    })
                };
                let h1 = writer(100);
                let h2 = writer(1_000);
                let h3 = writer(10_000);
                join_ok(h1);
                join_ok(h2);
                join_ok(h3);
                assert_eq!(RACE_HIST.count() - c0, 6, "histogram lost a record");
                assert_eq!(
                    RACE_HIST.sum() - s0,
                    100 + 300 + 1_000 + 3_000 + 10_000 + 30_000,
                    "histogram sum drifted from the records issued"
                );
            },
        )
    }

    /// Seeded defect: a reader snapshots (count, sum) while a writer is
    /// mid-record. The pairwise RMWs are individually atomic but the
    /// snapshot invariant `sum == 5 * count` is not — the checker must find
    /// the torn read.
    fn seed_torn_snapshot() -> CheckReport {
        check(
            CheckOptions::new("seed:torn-snapshot").with_max_schedules(4_000),
            || {
                TORN_COUNT.store(0, Ordering::Relaxed);
                TORN_SUM.store(0, Ordering::Relaxed);
                let h = thread::spawn(|| {
                    for _ in 0..2 {
                        TORN_COUNT.fetch_add(1, Ordering::Relaxed);
                        TORN_SUM.fetch_add(5, Ordering::Relaxed);
                    }
                });
                // Unsynchronised snapshot racing the writer: the defect.
                let s = TORN_SUM.load(Ordering::Relaxed);
                let c = TORN_COUNT.load(Ordering::Relaxed);
                join_ok(h);
                assert_eq!(s, 5 * c, "torn snapshot: sum and count read inconsistently");
            },
        )
    }

    // -----------------------------------------------------------------
    // trace-tree
    // -----------------------------------------------------------------

    /// A request whose context is adopted by a spawned worker: the buffered
    /// events must form one well-formed tree with exactly the three spans
    /// issued (root, root child, worker child).
    fn trace_tree() -> CheckReport {
        check(
            CheckOptions::new("trace-tree").with_max_schedules(3_500),
            || {
                trace::reset_events();
                let trace_id;
                {
                    let req = trace::request("race.request");
                    trace_id = req.trace_id().expect("tracing enabled under the suite");
                    let ctx = trace::current().expect("active trace context");
                    let worker = || {
                        thread::spawn(move || {
                            let _adopt = ctx.adopt();
                            let _g = spans::span("race.child");
                        })
                    };
                    let h1 = worker();
                    let h2 = worker();
                    {
                        let _g = spans::span("race.root_child");
                    }
                    join_ok(h1);
                    join_ok(h2);
                }
                let events = trace::events_snapshot();
                assert!(
                    trace::is_well_formed_tree(&events, trace_id),
                    "trace events do not form a single well-formed tree"
                );
                let ours = events.iter().filter(|e| e.trace == trace_id.0).count();
                assert_eq!(ours, 4, "trace buffered {ours} events, expected 4");
            },
        )
    }

    // -----------------------------------------------------------------
    // scratch-pool / seed: double-lease
    // -----------------------------------------------------------------

    /// Correct leasing: pop under a single lock acquisition.
    fn lease_buffer(pool: &Mutex<Vec<u64>>) -> Option<u64> {
        pool.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    /// Seeded defect: TOCTOU — peek under one lock acquisition, pop under
    /// another, hand out the peeked id. Two workers can peek the same
    /// buffer before either pops.
    fn lease_buffer_torn(pool: &Mutex<Vec<u64>>) -> Option<u64> {
        let peeked = pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .last()
            .copied();
        let _ = pool.lock().unwrap_or_else(|e| e.into_inner()).pop();
        peeked
    }

    /// Two workers exercise the real thread-local scratch pool (reuse must
    /// hand back zeroed buffers and count saved bytes) and lease from a
    /// shared buffer table; an in-use bitmask catches any double lease.
    fn scratch_pool_check(name: &str, torn: bool) -> CheckReport {
        check(
            CheckOptions::new(name)
                .with_max_schedules(3_500)
                .with_preemption_bound(3),
            move || {
                let saved0 = ALLOC_SAVED_BYTES.get();
                let pool = Arc::new(Mutex::new(vec![0u64, 1, 2]));
                let in_use = Arc::new(AtomicU64::new(0));
                let worker = |pool: &Arc<Mutex<Vec<u64>>>, in_use: &Arc<AtomicU64>| {
                    let pool = Arc::clone(pool);
                    let in_use = Arc::clone(in_use);
                    thread::spawn(move || {
                        // Fresh OS thread => fresh thread-local pool: the
                        // second take must be a reuse hit and come back
                        // zeroed despite the dirtying write.
                        let mut a = scratch::take(64);
                        a.iter_mut().for_each(|x| *x = 7.0);
                        scratch::give(a);
                        let b = scratch::take(64);
                        assert!(
                            b.iter().all(|&x| x == 0.0),
                            "scratch pool handed out a dirty buffer"
                        );
                        scratch::give(b);
                        let leased = if torn {
                            lease_buffer_torn(&pool)
                        } else {
                            lease_buffer(&pool)
                        };
                        if let Some(id) = leased {
                            let prev = in_use.fetch_or(1 << id, Ordering::Relaxed);
                            assert_eq!(
                                prev & (1 << id),
                                0,
                                "double lease: buffer {id} handed to two workers"
                            );
                        }
                    })
                };
                let h1 = worker(&pool, &in_use);
                let h2 = worker(&pool, &in_use);
                let h3 = worker(&pool, &in_use);
                join_ok(h1);
                join_ok(h2);
                join_ok(h3);
                // Each worker's second take(64) reuses 64 floats = 256 B.
                assert_eq!(
                    ALLOC_SAVED_BYTES.get() - saved0,
                    3 * 64 * 4,
                    "scratch reuse accounting drifted"
                );
            },
        )
    }

    fn scratch_pool() -> CheckReport {
        scratch_pool_check("scratch-pool", false)
    }

    fn seed_double_lease() -> CheckReport {
        scratch_pool_check("seed:double-lease", true)
    }

    // -----------------------------------------------------------------
    // par-harness / seed: dropped-task
    // -----------------------------------------------------------------

    type Task = Box<dyn FnOnce() -> u64 + Send>;

    /// Modeled mirror of `ses_tensor::par::run_tasks`: the caller runs the
    /// first chunk inline, workers run the rest, and *every* worker is
    /// joined before the first panic is re-raised (the same join-all
    /// contract `ses_verify::partition` locks for the real runtime, whose
    /// `std::thread::scope` the checker cannot intercept).
    fn model_run_tasks(tasks: Vec<Task>, poison_first_worker: bool) -> Vec<u64> {
        const THREADS: usize = 3;
        let n = tasks.len();
        if n <= 1 {
            return tasks.into_iter().map(|t| t()).collect();
        }
        let workers = THREADS.min(n);
        let chunk = n.div_ceil(workers);
        let mut iter = tasks.into_iter();
        let mut chunks: Vec<Vec<Task>> = Vec::new();
        loop {
            let c: Vec<Task> = iter.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            chunks.push(c);
        }
        let mut chunk_iter = chunks.into_iter();
        let first = chunk_iter.next().expect("at least one chunk");
        let handles: Vec<_> = chunk_iter
            .enumerate()
            .map(|(w, c)| {
                let poison = poison_first_worker && w == 0;
                thread::spawn(move || {
                    assert!(!poison, "ses-race: injected worker panic");
                    c.into_iter().map(|t| t()).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut out: Vec<Vec<u64>> = vec![first.into_iter().map(|t| t()).collect()];
        let mut first_panic = None;
        for h in handles {
            match h.join() {
                Ok(v) => out.push(v),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
        out.into_iter().flatten().collect()
    }

    /// Modeled mirror of `ses_tensor::par::run_isolated`: catch the
    /// parallel phase's panic, count the degradation, rerun serially.
    fn model_run_isolated<P, S>(parallel: P, serial: S) -> Vec<u64>
    where
        P: FnOnce() -> Vec<u64>,
        S: FnOnce() -> Vec<u64>,
    {
        match std::panic::catch_unwind(AssertUnwindSafe(parallel)) {
            Ok(v) => v,
            Err(_panic) => {
                KERNEL_PANIC_DEGRADED.incr();
                serial()
            }
        }
    }

    /// A poisoned worker panics mid-batch: degradation must be counted
    /// exactly once and the serial rerun must produce every task's result
    /// exactly once, in order.
    fn par_harness_check(name: &str, drop_defect: bool) -> CheckReport {
        check(
            CheckOptions::new(name)
                .with_max_schedules(3_000)
                .with_preemption_bound(3),
            move || {
                let d0 = KERNEL_PANIC_DEGRADED.get();
                let mark = Arc::new(AtomicU64::new(0));
                let make_tasks = |mark: &Arc<AtomicU64>| -> Vec<Task> {
                    (0..3u64)
                        .map(|i| {
                            let m = Arc::clone(mark);
                            Box::new(move || {
                                m.fetch_or(1 << i, Ordering::Relaxed);
                                i
                            }) as Task
                        })
                        .collect()
                };
                let par_tasks = make_tasks(&mark);
                let ser_tasks = make_tasks(&mark);
                let result = model_run_isolated(
                    move || model_run_tasks(par_tasks, true),
                    move || {
                        // Seeded defect: the serial rerun silently skips
                        // the first task of the batch.
                        let skip = usize::from(drop_defect);
                        ser_tasks.into_iter().skip(skip).map(|t| t()).collect()
                    },
                );
                assert_eq!(
                    KERNEL_PANIC_DEGRADED.get() - d0,
                    1,
                    "panic degradation must be counted exactly once"
                );
                assert_eq!(
                    result,
                    vec![0, 1, 2],
                    "degraded rerun dropped or duplicated a task"
                );
                assert_eq!(
                    mark.load(Ordering::Relaxed) & 0b111,
                    0b111,
                    "a task never ran"
                );
            },
        )
    }

    fn par_harness() -> CheckReport {
        par_harness_check("par-harness", false)
    }

    fn seed_dropped_task() -> CheckReport {
        par_harness_check("seed:dropped-task", true)
    }

    // -----------------------------------------------------------------
    // CLI
    // -----------------------------------------------------------------

    /// A named check: display name plus the function that runs it.
    type NamedCheck = (&'static str, fn() -> CheckReport);

    const CLEAN_CHECKS: &[NamedCheck] = &[
        ("counter-increments", counter_increments),
        ("hist-record", hist_record),
        ("trace-tree", trace_tree),
        ("scratch-pool", scratch_pool),
        ("par-harness", par_harness),
    ];

    const SEED_DEFECTS: &[NamedCheck] = &[
        ("lost-increment", seed_lost_increment),
        ("torn-snapshot", seed_torn_snapshot),
        ("double-lease", seed_double_lease),
        ("dropped-task", seed_dropped_task),
    ];

    /// Touches every lazily-initialised global *outside* the model so no
    /// check pays (or non-deterministically skips) first-use work: span
    /// slots, trace ids, the event-buffer `OnceLock`, the process-start
    /// instant, and the enabled override.
    fn prewarm() {
        ses_obs::set_enabled_override(Some(true));
        {
            let req = trace::request("race.request");
            let _ = req.trace_id();
            let _a = spans::span("race.root_child");
            let _b = spans::span("race.child");
        }
        trace::reset_events();
        scratch::give(scratch::take(64));
    }

    fn usage() -> String {
        let checks: Vec<&str> = CLEAN_CHECKS.iter().map(|(n, _)| *n).collect();
        let defects: Vec<&str> = SEED_DEFECTS.iter().map(|(n, _)| *n).collect();
        format!(
            "usage: ses-race [--list] [--seed-defect <{}>] [check ...]\n\
             checks: {}",
            defects.join("|"),
            checks.join(", ")
        )
    }

    pub fn cli() -> i32 {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut selected: Vec<&NamedCheck> = Vec::new();
        let mut filter: Vec<String> = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--list" => {
                    for (n, _) in CLEAN_CHECKS {
                        println!("{n}");
                    }
                    for (n, _) in SEED_DEFECTS {
                        println!("seed:{n}");
                    }
                    return 0;
                }
                "--seed-defect" => {
                    let Some(name) = args.get(i + 1) else {
                        eprintln!("--seed-defect needs a name\n{}", usage());
                        return 2;
                    };
                    let Some(d) = SEED_DEFECTS.iter().find(|(n, _)| n == name) else {
                        eprintln!("unknown defect `{name}`\n{}", usage());
                        return 2;
                    };
                    selected.push(d);
                    i += 2;
                }
                "--help" | "-h" => {
                    println!("{}", usage());
                    return 0;
                }
                other if other.starts_with('-') => {
                    eprintln!("unknown flag `{other}`\n{}", usage());
                    return 2;
                }
                name => {
                    if !CLEAN_CHECKS.iter().any(|(n, _)| *n == name) {
                        eprintln!("unknown check `{name}`\n{}", usage());
                        return 2;
                    }
                    filter.push(name.to_string());
                    i += 1;
                    continue;
                }
            }
        }

        let full_clean_run = selected.is_empty() && filter.is_empty();
        let runs: Vec<&NamedCheck> = if !selected.is_empty() {
            selected
        } else {
            CLEAN_CHECKS
                .iter()
                .filter(|(n, _)| filter.is_empty() || filter.iter().any(|f| f == n))
                .collect()
        };

        prewarm();

        let mut total_schedules = 0u64;
        let mut total_pruned = 0u64;
        let mut failures = 0u32;
        for (_, run) in &runs {
            let report = run();
            println!("{}", report.summary());
            total_schedules += report.schedules;
            total_pruned += report.pruned;
            if let Some(f) = &report.failure {
                failures += 1;
                print!("{}", f.render());
            }
        }
        println!(
            "total: {} schedules explored across {} check(s) ({} pruned)",
            total_schedules,
            runs.len(),
            total_pruned
        );

        if failures > 0 {
            eprintln!("ses-race: {failures} check(s) FAILED");
            return 1;
        }
        if full_clean_run && total_schedules < MIN_TOTAL_SCHEDULES {
            eprintln!(
                "ses-race: clean run explored only {total_schedules} schedules \
                 (< {MIN_TOTAL_SCHEDULES}); raise the per-check budgets"
            );
            return 1;
        }
        0
    }
}

fn main() {
    #[cfg(feature = "race")]
    std::process::exit(suite::cli());

    #[cfg(not(feature = "race"))]
    {
        eprintln!(
            "ses-race: built without the `race` feature, so the runtime is not on the \
             model-checking shim.\nrebuild with: cargo run -p ses-race-suite --features race --bin ses-race"
        );
        std::process::exit(2);
    }
}
