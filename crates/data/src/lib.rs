//! `ses-data` — datasets for the SES reproduction.
//!
//! * [`synthetic`] — the four explanation benchmarks (BAShapes, BACommunity,
//!   Tree-Cycle, Tree-Grid) **with ground-truth motif explanations**;
//! * [`realworld`] — planted-partition stand-ins for Cora, CiteSeer,
//!   PolBlogs and Coauthor-CS (see DESIGN.md for the substitution rationale);
//! * [`dataset`] — the `Dataset` container, splits and size profiles.

pub mod dataset;
pub mod realworld;
pub mod synthetic;

pub use dataset::{Dataset, Profile, Splits};
pub use synthetic::{GroundTruth, SyntheticDataset};
