//! Synthetic stand-ins for the paper's real-world datasets.
//!
//! The paper evaluates on Cora, CiteSeer, PolBlogs and Coauthor-CS — external
//! downloads unavailable in this offline reproduction. Each stand-in is a
//! planted-partition graph whose node/edge/class counts, average degree,
//! homophily and feature model are matched to the published statistics, so
//! every code path (sparse high-dimensional features, featureless identity
//! input, large-graph scaling) is exercised. See DESIGN.md for the
//! substitution table.

use rand::Rng;
use ses_graph::generators::planted_partition;
use ses_graph::Graph;
use ses_tensor::Matrix;

use crate::dataset::{Dataset, Profile};

/// Parameters of a citation-style stand-in generator.
#[derive(Debug, Clone)]
pub struct CitationParams {
    /// Dataset name.
    pub name: &'static str,
    /// Number of classes (blocks).
    pub n_classes: usize,
    /// Nodes per class.
    pub nodes_per_class: usize,
    /// Target average degree.
    pub avg_degree: f64,
    /// Target edge homophily (fraction of same-class edges).
    pub homophily: f64,
    /// Feature dimensionality (bag-of-words).
    pub feat_dim: usize,
    /// Probability a topic word fires for a node of the matching class.
    pub p_topic: f64,
    /// Probability any word fires as background noise.
    pub p_noise: f64,
}

impl CitationParams {
    fn generate(&self, rng: &mut impl Rng) -> Dataset {
        let k = self.n_classes;
        let s = self.nodes_per_class;
        let n = k * s;
        let d_in = self.homophily * self.avg_degree;
        let d_out = (1.0 - self.homophily) * self.avg_degree;
        let p_in = (d_in / (s.saturating_sub(1)) as f64).min(1.0);
        let p_out = (d_out / (n - s) as f64).min(1.0);
        let (n, edges, labels) = planted_partition(k, s, p_in, p_out, rng);

        // class-conditional sparse bag-of-words: each class owns a
        // contiguous topic block of feat_dim / k words.
        let block = (self.feat_dim / k).max(1);
        let mut features = Matrix::zeros(n, self.feat_dim);
        for v in 0..n {
            let c = labels[v];
            let topic = (c * block).min(self.feat_dim.saturating_sub(block));
            for j in 0..self.feat_dim {
                let p = if (topic..topic + block).contains(&j) {
                    self.p_topic
                } else {
                    self.p_noise
                };
                if rng.gen_bool(p) {
                    features[(v, j)] = 1.0;
                }
            }
        }
        Dataset::new(self.name, Graph::new(n, &edges, features, labels))
    }
}

/// Cora stand-in. Paper: 2,708 nodes / 10,556 edges / 1,433 features /
/// 7 classes, homophily ≈ 0.81.
pub fn cora_like(profile: Profile, rng: &mut impl Rng) -> Dataset {
    let p = match profile {
        Profile::Paper => CitationParams {
            name: "cora-like",
            n_classes: 7,
            nodes_per_class: 387, // 2709 ≈ 2708
            avg_degree: 3.9,
            homophily: 0.81,
            feat_dim: 1433,
            p_topic: 0.06,
            p_noise: 0.004,
        },
        Profile::Fast => CitationParams {
            name: "cora-like",
            n_classes: 7,
            nodes_per_class: 100,
            avg_degree: 3.9,
            homophily: 0.81,
            feat_dim: 140,
            p_topic: 0.12,
            p_noise: 0.03,
        },
    };
    p.generate(rng)
}

/// CiteSeer stand-in. Paper: 3,327 nodes / 9,104 edges / 6 classes — sparser
/// and less homophilous than Cora (the "harder" citation graph).
pub fn citeseer_like(profile: Profile, rng: &mut impl Rng) -> Dataset {
    let p = match profile {
        Profile::Paper => CitationParams {
            name: "citeseer-like",
            n_classes: 6,
            nodes_per_class: 554, // 3324 ≈ 3327
            avg_degree: 2.7,
            homophily: 0.74,
            feat_dim: 1433,
            p_topic: 0.05,
            p_noise: 0.005,
        },
        Profile::Fast => CitationParams {
            name: "citeseer-like",
            n_classes: 6,
            nodes_per_class: 110,
            avg_degree: 2.7,
            homophily: 0.74,
            feat_dim: 132,
            p_topic: 0.09,
            p_noise: 0.035,
        },
    };
    p.generate(rng)
}

/// PolBlogs stand-in. Paper: 1,490 nodes / 19,025 edges / 2 classes and **no
/// node features** — the paper assigns the identity matrix. Dense,
/// high-homophily two-block SBM; classification must come from structure.
pub fn polblogs_like(profile: Profile, rng: &mut impl Rng) -> Dataset {
    let (k, s, avg_deg, homo) = match profile {
        Profile::Paper => (2usize, 745usize, 25.5, 0.92),
        Profile::Fast => (2usize, 200usize, 18.0, 0.80),
    };
    let n = k * s;
    let d_in = homo * avg_deg;
    let d_out = (1.0 - homo) * avg_deg;
    let p_in = d_in / (s - 1) as f64;
    let p_out = d_out / (n - s) as f64;
    let (n, edges, labels) = planted_partition(k, s, p_in, p_out, rng);
    // identity features, as in the paper's treatment of PolBlogs
    let features = Matrix::identity(n);
    Dataset::new("polblogs-like", Graph::new(n, &edges, features, labels))
}

/// Coauthor-CS stand-in. Paper: 18,333 nodes / 163,788 edges / 15 classes.
/// The `Fast` profile scales nodes ×4 down while keeping degree/homophily.
pub fn coauthor_cs_like(profile: Profile, rng: &mut impl Rng) -> Dataset {
    let p = match profile {
        Profile::Paper => CitationParams {
            name: "cs-like",
            n_classes: 15,
            nodes_per_class: 1222, // 18330 ≈ 18333
            avg_degree: 8.9,
            homophily: 0.80,
            feat_dim: 500,
            p_topic: 0.10,
            p_noise: 0.01,
        },
        Profile::Fast => CitationParams {
            name: "cs-like",
            n_classes: 15,
            nodes_per_class: 160,
            avg_degree: 8.9,
            homophily: 0.80,
            feat_dim: 150,
            p_topic: 0.07,
            p_noise: 0.025,
        },
    };
    p.generate(rng)
}

/// All four real-world stand-ins in the paper's order.
pub fn all_realworld(profile: Profile, rng: &mut impl Rng) -> Vec<Dataset> {
    vec![
        cora_like(profile, rng),
        citeseer_like(profile, rng),
        polblogs_like(profile, rng),
        coauthor_cs_like(profile, rng),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn cora_like_statistics() {
        let d = cora_like(Profile::Fast, &mut rng());
        let g = &d.graph;
        assert_eq!(g.n_nodes(), 700);
        assert_eq!(g.n_classes(), 7);
        let avg = g.avg_degree();
        assert!((3.0..5.0).contains(&avg), "avg degree {avg}");
        let h = g.edge_homophily();
        assert!((0.70..0.90).contains(&h), "homophily {h}");
    }

    #[test]
    fn citeseer_sparser_than_cora() {
        let cora = cora_like(Profile::Fast, &mut rng());
        let cs = citeseer_like(Profile::Fast, &mut rng());
        assert!(cs.graph.avg_degree() < cora.graph.avg_degree());
        assert!(cs.graph.edge_homophily() < cora.graph.edge_homophily() + 0.03);
    }

    #[test]
    fn polblogs_identity_features() {
        let d = polblogs_like(Profile::Fast, &mut rng());
        assert_eq!(d.graph.n_features(), d.graph.n_nodes());
        assert_eq!(d.graph.n_classes(), 2);
        // identity check on a few rows
        let f = d.graph.features();
        assert_eq!(f[(5, 5)], 1.0);
        assert_eq!(f[(5, 6)], 0.0);
        let h = d.graph.edge_homophily();
        assert!(h > 0.72, "polblogs homophily {h}");
    }

    #[test]
    fn cs_like_is_largest() {
        let all = all_realworld(Profile::Fast, &mut rng());
        let ns: Vec<usize> = all.iter().map(|d| d.graph.n_nodes()).collect();
        assert_eq!(
            ns.iter().max(),
            Some(&ns[3]),
            "CS stand-in should be largest: {ns:?}"
        );
    }

    #[test]
    fn features_are_class_informative() {
        let d = cora_like(Profile::Fast, &mut rng());
        let g = &d.graph;
        // per-dimension firing rate inside the matching topic block must
        // clearly exceed the background-noise rate
        let block = g.n_features() / g.n_classes();
        let mut hit = 0.0f64;
        let mut miss = 0.0f64;
        for v in 0..g.n_nodes() {
            let c = g.labels()[v];
            let row = g.features().row(v);
            let topic_sum: f32 = row[c * block..(c + 1) * block].iter().sum();
            hit += topic_sum as f64;
            miss += (row.iter().sum::<f32>() - topic_sum) as f64;
        }
        let hit_rate = hit / (g.n_nodes() * block) as f64;
        let miss_rate = miss / (g.n_nodes() * (g.n_features() - block)) as f64;
        assert!(
            hit_rate > 2.0 * miss_rate,
            "topic rate {hit_rate:.4} must dominate noise rate {miss_rate:.4}"
        );
    }
}
