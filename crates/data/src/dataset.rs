//! Dataset container, train/val/test splitting, and size profiles.

use rand::seq::SliceRandom;
use rand::Rng;
use ses_graph::Graph;

/// A named graph dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `"cora-like"`).
    pub name: String,
    /// The attributed graph.
    pub graph: Graph,
}

impl Dataset {
    /// Wraps a graph with a name.
    pub fn new(name: impl Into<String>, graph: Graph) -> Self {
        Self {
            name: name.into(),
            graph,
        }
    }
}

/// Node index sets for train/validation/test.
#[derive(Debug, Clone)]
pub struct Splits {
    /// Training node indices.
    pub train: Vec<usize>,
    /// Validation node indices.
    pub val: Vec<usize>,
    /// Test node indices.
    pub test: Vec<usize>,
}

impl Splits {
    /// Randomly splits `0..n` into train/val/test by the given fractions
    /// (which must sum to ≤ 1; any remainder goes to test).
    ///
    /// The paper uses 60/20/20 for node classification and 80/10/10 for the
    /// synthetic explanation benchmarks.
    pub fn random(n: usize, train_frac: f64, val_frac: f64, rng: &mut impl Rng) -> Self {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0 + 1e-9);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        let n_train = ((n as f64) * train_frac).round() as usize;
        let n_val = ((n as f64) * val_frac).round() as usize;
        let train = idx[..n_train].to_vec();
        let val = idx[n_train..(n_train + n_val).min(n)].to_vec();
        let test = idx[(n_train + n_val).min(n)..].to_vec();
        Self { train, val, test }
    }

    /// The paper's node-classification split: 60% train / 20% val / 20% test.
    pub fn classification(n: usize, rng: &mut impl Rng) -> Self {
        Self::random(n, 0.6, 0.2, rng)
    }

    /// The paper's explanation-task split: 80% train / 10% val / 10% test.
    pub fn explanation(n: usize, rng: &mut impl Rng) -> Self {
        Self::random(n, 0.8, 0.1, rng)
    }

    /// Total number of indices across all three sets.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True when all splits are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Dataset size profile.
///
/// `Paper` reproduces the published node/edge/feature counts; `Fast` scales
/// the real-world stand-ins down (~4×) so the full benchmark suite runs on a
/// laptop CPU in minutes. The synthetic explanation benchmarks are identical
/// under both profiles (they are small already).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// Reduced sizes for CPU-friendly iteration (default).
    #[default]
    Fast,
    /// Published dataset sizes.
    Paper,
}

impl Profile {
    /// Reads the profile from the `SES_PROFILE` environment variable
    /// (`"paper"` selects [`Profile::Paper`]; anything else is `Fast`).
    pub fn from_env() -> Self {
        match std::env::var("SES_PROFILE").as_deref() {
            Ok("paper") | Ok("PAPER") => Profile::Paper,
            _ => Profile::Fast,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn splits_partition_nodes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = Splits::classification(100, &mut rng);
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 20);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn explanation_split_ratios() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = Splits::explanation(200, &mut rng);
        assert_eq!(s.train.len(), 160);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 20);
    }

    #[test]
    fn splits_differ_across_seeds() {
        let a = Splits::classification(50, &mut rand::rngs::StdRng::seed_from_u64(1));
        let b = Splits::classification(50, &mut rand::rngs::StdRng::seed_from_u64(2));
        assert_ne!(a.train, b.train);
    }
}
