//! The four synthetic explanation benchmarks of the paper (following the
//! GNNExplainer construction): BAShapes, BACommunity, Tree-Cycle, Tree-Grid.
//!
//! Each dataset carries **ground-truth explanations**: the motif edges that
//! justify a motif node's label. Explanation AUC (Table 4) scores an
//! explainer's edge weights against this ground truth.

use std::collections::HashSet;

use rand::Rng;
use ses_graph::generators::{
    attach_motifs, balanced_binary_tree, barabasi_albert, cycle_motif, grid_motif, house_motif,
    EdgeListBuilder,
};
use ses_graph::Graph;
use ses_tensor::{init, Matrix};

use crate::dataset::Dataset;

/// Ground-truth explanation structure for a synthetic dataset.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    motif_of_node: Vec<Option<usize>>,
    motif_edges: Vec<Vec<(usize, usize)>>,
    edge_set: HashSet<(usize, usize)>,
}

impl GroundTruth {
    fn new(motif_of_node: Vec<Option<usize>>, motif_edges: Vec<Vec<(usize, usize)>>) -> Self {
        let mut edge_set = HashSet::new();
        for edges in &motif_edges {
            for &(u, v) in edges {
                edge_set.insert((u, v));
                edge_set.insert((v, u));
            }
        }
        Self {
            motif_of_node,
            motif_edges,
            edge_set,
        }
    }

    /// The motif id a node belongs to, if any.
    pub fn motif_of(&self, v: usize) -> Option<usize> {
        self.motif_of_node[v]
    }

    /// All nodes that belong to some motif.
    pub fn motif_nodes(&self) -> Vec<usize> {
        (0..self.motif_of_node.len())
            .filter(|&v| self.motif_of_node[v].is_some())
            .collect()
    }

    /// The edges of motif `m`.
    pub fn edges_of_motif(&self, m: usize) -> &[(usize, usize)] {
        &self.motif_edges[m]
    }

    /// Number of motifs.
    pub fn n_motifs(&self) -> usize {
        self.motif_edges.len()
    }

    /// True when `(u, v)` (either orientation) is a ground-truth motif edge.
    pub fn is_motif_edge(&self, u: usize, v: usize) -> bool {
        self.edge_set.contains(&(u, v))
    }
}

/// A synthetic benchmark: the dataset plus its explanation ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The graph dataset.
    pub dataset: Dataset,
    /// Ground-truth motif structure.
    pub ground_truth: GroundTruth,
}

/// Node-label conventions shared by the generators below (matching
/// GNNExplainer): base/tree nodes get class 0; motif nodes get role classes.
const BASE_CLASS: usize = 0;

/// Structural feature augmentation for the constant-feature benchmarks:
/// appends normalised degree, mean neighbour degree and local clustering
/// coefficient to each node's features. GNNExplainer's synthetic benchmarks
/// carry no informative features — the label is purely structural — and a
/// symmetric-normalised GCN sees almost none of that structure through
/// constant inputs, so reproductions commonly add these descriptors.
/// **Opt-in**: the benchmark datasets keep their paper-faithful constant
/// features (explanations must come from structure); call this only for
/// auxiliary studies where feature-driven shortcuts are acceptable.
pub fn augment_structural_features(graph: &Graph) -> Matrix {
    let n = graph.n_nodes();
    let base = graph.features();
    let max_deg = (0..n).map(|v| graph.degree(v)).max().unwrap_or(1).max(1) as f32;
    let mut out = Matrix::zeros(n, base.cols() + 3);
    for v in 0..n {
        let row = out.row_mut(v);
        row[..base.cols()].copy_from_slice(base.row(v));
        let deg = graph.degree(v) as f32;
        row[base.cols()] = deg / max_deg;
        let nbrs = graph.neighbors(v);
        let mean_nbr_deg = if nbrs.is_empty() {
            0.0
        } else {
            nbrs.iter().map(|&u| graph.degree(u) as f32).sum::<f32>() / nbrs.len() as f32
        };
        row[base.cols() + 1] = mean_nbr_deg / max_deg;
        // local clustering: closed triangles / possible pairs
        let mut tri = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if graph.has_edge(a, b) {
                    tri += 1;
                }
            }
        }
        let pairs = nbrs.len() * nbrs.len().saturating_sub(1) / 2;
        row[base.cols() + 2] = if pairs > 0 {
            tri as f32 / pairs as f32
        } else {
            0.0
        };
    }
    out
}

/// **BAShapes**: a 300-node Barabási–Albert base graph with 80 five-node
/// "house" motifs attached. Four classes: base (0), top-of-square (1),
/// bottom-of-square (2), roof (3). Features are constant (structure must
/// carry the signal).
pub fn ba_shapes(rng: &mut impl Rng) -> SyntheticDataset {
    build_ba_houses(300, 80, 10, 0, rng)
}

/// **BACommunity**: the union of two BAShapes communities joined by random
/// inter-community edges. Eight classes (4 roles × 2 communities); features
/// are Gaussian with community-dependent mean.
pub fn ba_community(rng: &mut impl Rng) -> SyntheticDataset {
    let a = build_ba_houses(300, 80, 10, 0, rng);
    let b = build_ba_houses(300, 80, 10, 0, rng);
    let na = a.dataset.graph.n_nodes();
    let nb = b.dataset.graph.n_nodes();
    let n = na + nb;

    let mut edges: Vec<(usize, usize)> = a
        .dataset
        .graph
        .adjacency()
        .to_edges()
        .into_iter()
        .filter(|&(u, v)| u < v)
        .collect();
    edges.extend(
        b.dataset
            .graph
            .adjacency()
            .to_edges()
            .into_iter()
            .filter(|&(u, v)| u < v)
            .map(|(u, v)| (u + na, v + na)),
    );
    // sparse random inter-community bridges (~ n/100 edges)
    for _ in 0..(n / 100).max(4) {
        let u = rng.gen_range(0..na);
        let v = na + rng.gen_range(0..nb);
        edges.push((u, v));
    }

    // labels: community A keeps 0..=3, community B shifts to 4..=7
    let mut labels: Vec<usize> = a.dataset.graph.labels().to_vec();
    labels.extend(b.dataset.graph.labels().iter().map(|&c| c + 4));

    // features: N(-1, 0.5) for A, N(+1, 0.5) for B, 10 dims
    let f = 10;
    let mut features = Matrix::zeros(n, f);
    let fa = init::normal(na, f, 0.5, rng);
    let fb = init::normal(nb, f, 0.5, rng);
    for i in 0..na {
        for j in 0..f {
            features[(i, j)] = fa[(i, j)] - 1.0;
        }
    }
    for i in 0..nb {
        for j in 0..f {
            features[(na + i, j)] = fb[(i, j)] + 1.0;
        }
    }

    // ground truth: motifs of both halves, B's shifted
    let mut motif_of_node: Vec<Option<usize>> = a.ground_truth.motif_of_node.clone();
    let shift = a.ground_truth.n_motifs();
    motif_of_node.extend(
        b.ground_truth
            .motif_of_node
            .iter()
            .map(|m| m.map(|id| id + shift)),
    );
    let mut motif_edges = a.ground_truth.motif_edges.clone();
    motif_edges.extend(b.ground_truth.motif_edges.iter().map(|es| {
        es.iter()
            .map(|&(u, v)| (u + na, v + na))
            .collect::<Vec<_>>()
    }));

    let graph = Graph::new(n, &edges, features, labels);
    SyntheticDataset {
        dataset: Dataset::new("ba-community", graph),
        ground_truth: GroundTruth::new(motif_of_node, motif_edges),
    }
}

/// **Tree-Cycle**: a depth-8 balanced binary tree with 80 six-node cycle
/// motifs attached. Two classes: tree (0) vs cycle (1).
pub fn tree_cycle(rng: &mut impl Rng) -> SyntheticDataset {
    build_tree_motifs(8, 80, MotifKind::Cycle, rng)
}

/// **Tree-Grid**: a depth-8 balanced binary tree with 80 3×3 grid motifs
/// attached. Two classes: tree (0) vs grid (1).
pub fn tree_grid(rng: &mut impl Rng) -> SyntheticDataset {
    build_tree_motifs(8, 80, MotifKind::Grid, rng)
}

/// BA base + house motifs, with role labels. `extra_random_edges` adds
/// perturbation edges as in the GNNExplainer construction (we default to a
/// deterministic count of `n/10` when `0` is passed... no: pass explicitly).
fn build_ba_houses(
    base_nodes: usize,
    n_motifs: usize,
    feat_dim: usize,
    extra_random_edges: usize,
    rng: &mut impl Rng,
) -> SyntheticDataset {
    let mut builder = EdgeListBuilder::new();
    builder.add_nodes(base_nodes);
    for &(u, v) in &barabasi_albert(base_nodes, 5, rng) {
        builder.add_edge(u, v);
    }
    let mut labels = vec![BASE_CLASS; base_nodes];
    let mut motif_of_node = vec![None; base_nodes];
    let mut motif_edges = Vec::with_capacity(n_motifs);
    let mut entries = Vec::with_capacity(n_motifs);
    for m in 0..n_motifs {
        let ids = house_motif(&mut builder);
        // roles: ids[0], ids[1] top-of-square (class 1); ids[2], ids[3]
        // bottom (class 2); ids[4] roof (class 3)
        labels.extend_from_slice(&[1, 1, 2, 2, 3]);
        motif_of_node.extend(std::iter::repeat_n(Some(m), 5));
        let edges: Vec<(usize, usize)> = vec![
            (ids[0], ids[1]),
            (ids[1], ids[2]),
            (ids[2], ids[3]),
            (ids[3], ids[0]),
            (ids[0], ids[4]),
            (ids[1], ids[4]),
        ];
        motif_edges.push(edges);
        entries.push(ids[3]); // attach the house by a bottom corner
    }
    attach_motifs(&mut builder, base_nodes, &entries, rng);
    let (mut n, mut edges) = builder.finish();
    for _ in 0..extra_random_edges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v));
        }
    }
    n = n.max(base_nodes);
    let features = Matrix::ones(n, feat_dim);
    let graph = Graph::new(n, &edges, features, labels);
    SyntheticDataset {
        dataset: Dataset::new("ba-shapes", graph),
        ground_truth: GroundTruth::new(motif_of_node, motif_edges),
    }
}

enum MotifKind {
    Cycle,
    Grid,
}

fn build_tree_motifs(
    depth: usize,
    n_motifs: usize,
    kind: MotifKind,
    rng: &mut impl Rng,
) -> SyntheticDataset {
    let (tree_n, tree_edges) = balanced_binary_tree(depth);
    let mut builder = EdgeListBuilder::new();
    builder.add_nodes(tree_n);
    for &(u, v) in &tree_edges {
        builder.add_edge(u, v);
    }
    let mut labels = vec![BASE_CLASS; tree_n];
    let mut motif_of_node = vec![None; tree_n];
    let mut motif_edges = Vec::with_capacity(n_motifs);
    let mut entries = Vec::with_capacity(n_motifs);
    for m in 0..n_motifs {
        let (ids, motif_size): (Vec<usize>, usize) = match kind {
            MotifKind::Cycle => (cycle_motif(&mut builder).to_vec(), 6),
            MotifKind::Grid => (grid_motif(&mut builder).to_vec(), 9),
        };
        labels.extend(std::iter::repeat_n(1, motif_size));
        motif_of_node.extend(std::iter::repeat_n(Some(m), motif_size));
        let start = builder.edges().len()
            - match kind {
                MotifKind::Cycle => 6,
                MotifKind::Grid => 12,
            };
        motif_edges.push(builder.edges()[start..].to_vec());
        entries.push(ids[0]);
    }
    attach_motifs(&mut builder, tree_n, &entries, rng);
    let (n, edges) = builder.finish();
    let features = Matrix::ones(n, 10);
    let graph = Graph::new(n, &edges, features, labels);
    let name = match kind {
        MotifKind::Cycle => "tree-cycle",
        MotifKind::Grid => "tree-grid",
    };
    SyntheticDataset {
        dataset: Dataset::new(name, graph),
        ground_truth: GroundTruth::new(motif_of_node, motif_edges),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use ses_graph::n_connected_components;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn ba_shapes_shape() {
        let d = ba_shapes(&mut rng());
        let g = &d.dataset.graph;
        assert_eq!(g.n_nodes(), 300 + 80 * 5);
        assert_eq!(g.n_classes(), 4);
        assert_eq!(d.ground_truth.n_motifs(), 80);
        assert_eq!(n_connected_components(g), 1, "motifs must be attached");
        // label histogram: 80 roofs, 160 top, 160 bottom
        let roofs = g.labels().iter().filter(|&&c| c == 3).count();
        assert_eq!(roofs, 80);
    }

    #[test]
    fn ba_shapes_ground_truth_edges_exist() {
        let d = ba_shapes(&mut rng());
        for m in 0..d.ground_truth.n_motifs() {
            for &(u, v) in d.ground_truth.edges_of_motif(m) {
                assert!(d.dataset.graph.has_edge(u, v));
                assert!(d.ground_truth.is_motif_edge(u, v));
                assert!(d.ground_truth.is_motif_edge(v, u));
            }
        }
    }

    #[test]
    fn ba_community_shape() {
        let d = ba_community(&mut rng());
        let g = &d.dataset.graph;
        assert_eq!(g.n_nodes(), 2 * (300 + 400));
        assert_eq!(g.n_classes(), 8);
        assert_eq!(d.ground_truth.n_motifs(), 160);
        // community feature separation
        let f = g.features();
        let mean_a: f32 =
            (0..700).map(|i| f.row(i).iter().sum::<f32>()).sum::<f32>() / (700.0 * 10.0);
        let mean_b: f32 = (700..1400)
            .map(|i| f.row(i).iter().sum::<f32>())
            .sum::<f32>()
            / (700.0 * 10.0);
        assert!(mean_a < -0.5 && mean_b > 0.5, "means {mean_a} {mean_b}");
    }

    #[test]
    fn tree_cycle_shape() {
        let d = tree_cycle(&mut rng());
        let g = &d.dataset.graph;
        assert_eq!(g.n_nodes(), 255 + 80 * 6);
        assert_eq!(g.n_classes(), 2);
        assert_eq!(n_connected_components(g), 1);
        let cyc = g.labels().iter().filter(|&&c| c == 1).count();
        assert_eq!(cyc, 480);
    }

    #[test]
    fn tree_grid_shape() {
        let d = tree_grid(&mut rng());
        let g = &d.dataset.graph;
        assert_eq!(g.n_nodes(), 255 + 80 * 9);
        assert_eq!(g.n_classes(), 2);
        // every grid motif has 12 internal edges
        for m in 0..d.ground_truth.n_motifs() {
            assert_eq!(d.ground_truth.edges_of_motif(m).len(), 12);
        }
    }

    #[test]
    fn motif_nodes_have_motif_labels() {
        let d = tree_grid(&mut rng());
        for v in d.ground_truth.motif_nodes() {
            assert_eq!(d.dataset.graph.labels()[v], 1);
        }
    }
}
