//! Property tests for graph-side CSR contracts: adjacency symmetry, self-loop
//! augmentation, and the two normalisations used by the GNN encoders.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ses_graph::generators::planted_partition;
use ses_graph::{row_norm_values, sym_norm_values, with_self_loops, Graph};
use ses_tensor::Matrix;

fn random_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let (n, edges, labels) = planted_partition(3, 20, 0.2, 0.05, &mut rng);
    Graph::new(n, &edges, Matrix::zeros(n, 1), labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn adjacency_is_symmetric_and_loop_free(seed in 0u64..1000) {
        let g = random_graph(seed);
        let a = g.adjacency();
        for (r, c, _) in a.iter_entries() {
            prop_assert!(r != c, "adjacency must be loop-free");
            prop_assert!(a.find(c, r).is_some(), "missing mirror of ({r},{c})");
        }
    }

    #[test]
    fn self_loop_augmentation_is_a_superset_plus_diagonal(seed in 0u64..1000) {
        let g = random_graph(seed);
        let a = g.adjacency();
        let aug = with_self_loops(a);
        prop_assert_eq!(aug.nnz(), a.nnz() + a.n_rows());
        for i in 0..a.n_rows() {
            prop_assert!(aug.find(i, i).is_some(), "missing self-loop at {i}");
        }
        for (r, c, _) in a.iter_entries() {
            prop_assert!(aug.find(r, c).is_some(), "augmentation dropped ({r},{c})");
        }
    }

    #[test]
    fn sym_norm_preserves_symmetry(seed in 0u64..1000) {
        let g = random_graph(seed);
        let aug = with_self_loops(g.adjacency());
        let m = sym_norm_values(&aug);
        let s = m.structure();
        for (r, c, p) in s.iter_entries() {
            let q = s.find(c, r).expect("structure is symmetric");
            let (w, wt) = (m.values()[p], m.values()[q]);
            prop_assert!((w - wt).abs() < 1e-6, "D^-1/2 A D^-1/2 must stay symmetric");
            prop_assert!(w > 0.0 && w.is_finite());
        }
    }

    #[test]
    fn row_norm_rows_sum_to_one(seed in 0u64..1000) {
        let g = random_graph(seed);
        let aug = with_self_loops(g.adjacency());
        let m = row_norm_values(&aug);
        let s = m.structure();
        for r in 0..s.n_rows() {
            let range = s.row_range(r);
            if range.is_empty() {
                continue;
            }
            let sum: f32 = m.values()[range].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row {} sums to {}", r, sum);
        }
    }
}
