//! Random-graph building blocks: Barabási–Albert, balanced trees, motif
//! attachment, and stochastic block models.
//!
//! These are the primitives the dataset crate composes into the paper's
//! synthetic benchmarks (BAShapes, BACommunity, Tree-Cycle, Tree-Grid) and
//! the real-world stand-ins.

use rand::seq::SliceRandom;
use rand::Rng;

/// An edge list under construction plus the number of nodes so far.
#[derive(Debug, Clone, Default)]
pub struct EdgeListBuilder {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl EdgeListBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` fresh nodes, returning the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> usize {
        let first = self.n;
        self.n += count;
        first
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        debug_assert!(u < self.n && v < self.n);
        self.edges.push((u, v));
    }

    /// Number of nodes so far.
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Edges added so far.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Finishes, returning `(n_nodes, edges)`.
    pub fn finish(self) -> (usize, Vec<(usize, usize)>) {
        (self.n, self.edges)
    }
}

/// Barabási–Albert preferential attachment: starts from a small clique of
/// `m` nodes and attaches each new node to `m` existing nodes chosen with
/// probability proportional to degree.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> Vec<(usize, usize)> {
    assert!(m >= 1 && n > m, "barabasi_albert: need n > m >= 1");
    let mut edges = Vec::with_capacity(n * m);
    // Repeated-endpoint list: sampling an element uniformly is
    // degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n * m);
    for u in 0..m {
        for v in (u + 1)..m {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in m..n {
        let mut targets = Vec::with_capacity(m);
        let mut guard = 0;
        while targets.len() < m {
            let t = if endpoints.is_empty() {
                rng.gen_range(0..new)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if t != new && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            if guard > 100 * m {
                // Degenerate corner (tiny graphs): fall back to any distinct node.
                for cand in 0..new {
                    if !targets.contains(&cand) {
                        targets.push(cand);
                        if targets.len() == m {
                            break;
                        }
                    }
                }
                break;
            }
        }
        for &t in &targets {
            edges.push((new, t));
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    edges
}

/// A balanced binary tree with `depth` levels (root at node 0,
/// `2^depth − 1` nodes).
pub fn balanced_binary_tree(depth: usize) -> (usize, Vec<(usize, usize)>) {
    assert!(depth >= 1);
    let n = (1usize << depth) - 1;
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        edges.push((v, (v - 1) / 2));
    }
    (n, edges)
}

/// The 5-node "house" motif used by BAShapes/BACommunity: a square
/// (0-1-2-3) with a roof node 4 on top of 0 and 1.
/// Node roles within the motif: 0,1 = "roof-adjacent top of square",
/// 2,3 = bottom, 4 = roof.
pub fn house_motif(builder: &mut EdgeListBuilder) -> [usize; 5] {
    let base = builder.add_nodes(5);
    let ids = [base, base + 1, base + 2, base + 3, base + 4];
    // square
    builder.add_edge(ids[0], ids[1]);
    builder.add_edge(ids[1], ids[2]);
    builder.add_edge(ids[2], ids[3]);
    builder.add_edge(ids[3], ids[0]);
    // roof
    builder.add_edge(ids[0], ids[4]);
    builder.add_edge(ids[1], ids[4]);
    ids
}

/// A 6-node cycle motif (Tree-Cycle).
pub fn cycle_motif(builder: &mut EdgeListBuilder) -> [usize; 6] {
    let base = builder.add_nodes(6);
    let ids = [base, base + 1, base + 2, base + 3, base + 4, base + 5];
    for i in 0..6 {
        builder.add_edge(ids[i], ids[(i + 1) % 6]);
    }
    ids
}

/// A 3×3 grid motif (Tree-Grid).
pub fn grid_motif(builder: &mut EdgeListBuilder) -> [usize; 9] {
    let base = builder.add_nodes(9);
    let mut ids = [0usize; 9];
    for (i, id) in ids.iter_mut().enumerate() {
        *id = base + i;
    }
    for r in 0..3 {
        for c in 0..3 {
            let v = base + r * 3 + c;
            if c + 1 < 3 {
                builder.add_edge(v, v + 1);
            }
            if r + 1 < 3 {
                builder.add_edge(v, v + 3);
            }
        }
    }
    ids
}

/// Stochastic block model: `sizes[b]` nodes in block `b`; an edge between
/// nodes in blocks `(a, b)` appears with probability `p[a][b]`.
/// Returns `(n, edges, block_of_node)`.
pub fn stochastic_block_model(
    sizes: &[usize],
    p: &[Vec<f64>],
    rng: &mut impl Rng,
) -> (usize, Vec<(usize, usize)>, Vec<usize>) {
    let k = sizes.len();
    assert_eq!(
        p.len(),
        k,
        "sbm: probability matrix rows must match block count"
    );
    for row in p {
        assert_eq!(row.len(), k, "sbm: probability matrix must be square");
    }
    let n: usize = sizes.iter().sum();
    let mut block = Vec::with_capacity(n);
    for (b, &s) in sizes.iter().enumerate() {
        block.extend(std::iter::repeat_n(b, s));
    }
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p[block[u]][block[v]].clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    (n, edges, block)
}

/// Planted-partition convenience: `k` equal blocks of `size` nodes with
/// intra-block probability `p_in` and inter-block probability `p_out`.
pub fn planted_partition(
    k: usize,
    size: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut impl Rng,
) -> (usize, Vec<(usize, usize)>, Vec<usize>) {
    let sizes = vec![size; k];
    let p: Vec<Vec<f64>> = (0..k)
        .map(|a| (0..k).map(|b| if a == b { p_in } else { p_out }).collect())
        .collect();
    stochastic_block_model(&sizes, &p, rng)
}

/// A uniformly random spanning-tree-ish attachment: node `v` (v ≥ 1) links
/// to a uniformly random earlier node. Produces a random recursive tree.
pub fn random_recursive_tree(n: usize, rng: &mut impl Rng) -> Vec<(usize, usize)> {
    (1..n).map(|v| (v, rng.gen_range(0..v))).collect()
}

/// Connects `motif_entry` nodes to random attachment points of a base graph,
/// one edge per motif (the GNNExplainer construction).
pub fn attach_motifs(
    builder: &mut EdgeListBuilder,
    base_nodes: usize,
    motif_entries: &[usize],
    rng: &mut impl Rng,
) {
    let mut bases: Vec<usize> = (0..base_nodes).collect();
    bases.shuffle(rng);
    for (i, &entry) in motif_entries.iter().enumerate() {
        let b = bases[i % bases.len()];
        builder.add_edge(entry, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ba_edge_count() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let edges = barabasi_albert(100, 3, &mut rng);
        // clique(3)=3 edges + 97*3 new
        assert_eq!(edges.len(), 3 + 97 * 3);
        assert!(edges.iter().all(|&(u, v)| u < 100 && v < 100 && u != v));
    }

    #[test]
    fn ba_is_preferential() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let edges = barabasi_albert(500, 2, &mut rng);
        let mut deg = vec![0usize; 500];
        for &(u, v) in &edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let max_deg = *deg.iter().max().unwrap();
        let avg = deg.iter().sum::<usize>() as f64 / 500.0;
        assert!(
            max_deg as f64 > 4.0 * avg,
            "hub expected: max={max_deg}, avg={avg}"
        );
    }

    #[test]
    fn tree_shape() {
        let (n, edges) = balanced_binary_tree(4);
        assert_eq!(n, 15);
        assert_eq!(edges.len(), 14);
    }

    #[test]
    fn motifs_have_expected_edges() {
        let mut b = EdgeListBuilder::new();
        let h = house_motif(&mut b);
        assert_eq!(b.edges().len(), 6);
        assert_eq!(h.len(), 5);
        let mut b = EdgeListBuilder::new();
        cycle_motif(&mut b);
        assert_eq!(b.edges().len(), 6);
        let mut b = EdgeListBuilder::new();
        grid_motif(&mut b);
        assert_eq!(b.edges().len(), 12);
    }

    #[test]
    fn sbm_respects_blocks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (n, edges, block) = planted_partition(2, 100, 0.2, 0.01, &mut rng);
        assert_eq!(n, 200);
        let intra = edges.iter().filter(|&&(u, v)| block[u] == block[v]).count();
        let inter = edges.len() - intra;
        assert!(intra > inter * 2, "intra={intra} inter={inter}");
    }

    #[test]
    fn recursive_tree_is_connected_acyclic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let edges = random_recursive_tree(50, &mut rng);
        assert_eq!(edges.len(), 49);
        assert!(edges.iter().all(|&(v, p)| p < v));
    }
}
