//! Negative sampling over the complement of the k-hop adjacency.
//!
//! For the subgraph loss (Eq. 7) and the contrastive phase, SES pairs every
//! node's k-hop neighbours (`P_r`) with an equal number of nodes drawn from
//! outside the k-hop neighbourhood (`P_n`), preferring nodes with different
//! labels when label information is available.

use rand::seq::SliceRandom;
use rand::Rng;
use ses_tensor::CsrStructure;

/// Negative neighbour sets `P_n(v)` for every node: for each node `v`, a set
/// of nodes that are *not* within the k-hop neighbourhood of `v` and (when
/// possible) carry a different label, matching `|P_r(v)|` in size.
#[derive(Debug, Clone)]
pub struct NegativeSets {
    sets: Vec<Vec<usize>>,
}

impl NegativeSets {
    /// Samples negative sets given a k-hop structure.
    ///
    /// `labels_for_filter` — when `Some`, candidates sharing the node's label
    /// are skipped (the paper samples negatives "with different labels").
    /// Falls back to label-agnostic sampling when a node's candidate pool
    /// would otherwise be empty.
    pub fn sample(
        khop: &CsrStructure,
        labels_for_filter: Option<&[usize]>,
        rng: &mut impl Rng,
    ) -> Self {
        let n = khop.n_rows();
        let mut sets = Vec::with_capacity(n);
        for v in 0..n {
            let need = khop.row_nnz(v);
            sets.push(sample_for_node(khop, v, need, labels_for_filter, rng));
        }
        Self { sets }
    }

    /// The negative set of node `v`.
    pub fn of(&self, v: usize) -> &[usize] {
        &self.sets[v]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Draws `count` nodes (with replacement if the pool is smaller) from
    /// `P_n(v)`.
    pub fn draw(&self, v: usize, count: usize, rng: &mut impl Rng) -> Vec<usize> {
        let pool = &self.sets[v];
        if pool.is_empty() {
            return Vec::new();
        }
        (0..count)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect()
    }
}

/// Samples `need` negatives for one node by rejection from the complement of
/// its k-hop row. For small graphs (pool close to `need`) falls back to a
/// full enumeration + shuffle.
fn sample_for_node(
    khop: &CsrStructure,
    v: usize,
    need: usize,
    labels: Option<&[usize]>,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let n = khop.n_rows();
    let is_pos = |u: usize| u == v || khop.find(v, u).is_some();
    let label_ok = |u: usize| labels.is_none_or(|ls| ls[u] != ls[v]);

    // Rejection sampling is O(need) when the neighbourhood is a small
    // fraction of the graph; bail out to enumeration when it saturates.
    let mut out = Vec::with_capacity(need);
    let mut attempts = 0usize;
    let max_attempts = need.saturating_mul(20).max(64);
    while out.len() < need && attempts < max_attempts {
        attempts += 1;
        let u = rng.gen_range(0..n);
        if !is_pos(u) && label_ok(u) && !out.contains(&u) {
            out.push(u);
        }
    }
    if out.len() < need {
        // Enumerate the full candidate pool (rare: dense neighbourhoods).
        let mut pool: Vec<usize> = (0..n).filter(|&u| !is_pos(u) && label_ok(u)).collect();
        if pool.len() < need {
            // Relax the label constraint rather than under-sample.
            pool = (0..n).filter(|&u| !is_pos(u)).collect();
        }
        pool.shuffle(rng);
        out = pool.into_iter().take(need).collect();
    }
    out
}

/// Uniformly samples `count` distinct nodes from `0..n` (Floyd's algorithm).
pub fn sample_distinct(n: usize, count: usize, rng: &mut impl Rng) -> Vec<usize> {
    assert!(count <= n, "sample_distinct: count {count} > n {n}");
    let mut chosen = Vec::with_capacity(count);
    for j in n - count..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::khop::khop_structure;
    use rand::SeedableRng;
    use ses_tensor::Matrix;

    fn two_cliques() -> Graph {
        // nodes 0-2 clique label 0, nodes 3-5 clique label 1
        Graph::new(
            6,
            &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
            Matrix::zeros(6, 1),
            vec![0, 0, 0, 1, 1, 1],
        )
    }

    #[test]
    fn negatives_disjoint_from_khop() {
        let g = two_cliques();
        let khop = khop_structure(&g, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let negs = NegativeSets::sample(&khop, Some(g.labels()), &mut rng);
        for v in 0..g.n_nodes() {
            for &u in negs.of(v) {
                assert_ne!(u, v);
                assert!(khop.find(v, u).is_none(), "negative {u} is in khop of {v}");
                assert_ne!(g.labels()[u], g.labels()[v], "negative shares label");
            }
        }
    }

    #[test]
    fn negative_sizes_match_positive_sizes() {
        let g = two_cliques();
        let khop = khop_structure(&g, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let negs = NegativeSets::sample(&khop, Some(g.labels()), &mut rng);
        for v in 0..g.n_nodes() {
            assert_eq!(negs.of(v).len(), khop.row_nnz(v));
        }
    }

    #[test]
    fn label_constraint_relaxes_when_pool_too_small() {
        // Single-label graph: strict filtering would yield nothing.
        let g = Graph::new(4, &[(0, 1), (2, 3)], Matrix::zeros(4, 1), vec![0; 4]);
        let khop = khop_structure(&g, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let negs = NegativeSets::sample(&khop, Some(g.labels()), &mut rng);
        // node 0 has one neighbour, so it needs one negative, which must
        // come from the other component despite sharing the label.
        assert_eq!(negs.of(0).len(), 1);
        assert!(negs.of(0)[0] == 2 || negs.of(0)[0] == 3);
    }

    #[test]
    fn draw_with_replacement() {
        let g = two_cliques();
        let khop = khop_structure(&g, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let negs = NegativeSets::sample(&khop, None, &mut rng);
        let drawn = negs.draw(0, 10, &mut rng);
        assert_eq!(drawn.len(), 10);
        assert!(drawn.iter().all(|&u| negs.of(0).contains(&u)));
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let s = sample_distinct(50, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "samples must be distinct");
        assert!(sorted.iter().all(|&x| x < 50));
    }
}
