//! The central [`Graph`] type: an undirected attributed graph with labels.

use std::sync::Arc;

use ses_tensor::{CsrStructure, Matrix};

/// An undirected attributed graph `G = (V, A, X)` with node labels `Y`,
/// stored as a symmetric CSR adjacency (both `(u, v)` and `(v, u)` present),
/// a dense feature matrix and a label vector.
#[derive(Debug, Clone)]
pub struct Graph {
    adjacency: Arc<CsrStructure>,
    features: Matrix,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Graph {
    /// Builds a graph from an (unordered) undirected edge list.
    ///
    /// Both orientations of each edge are inserted; self-loops are preserved
    /// as single entries. `n_classes` is inferred as `max(labels) + 1`.
    ///
    /// # Panics
    /// Panics if `features.rows() != labels.len()` or an edge endpoint is out
    /// of range.
    pub fn new(n: usize, edges: &[(usize, usize)], features: Matrix, labels: Vec<usize>) -> Self {
        assert_eq!(
            features.rows(),
            n,
            "Graph::new: features must have one row per node"
        );
        assert_eq!(labels.len(), n, "Graph::new: one label per node required");
        let mut sym = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!(
                u < n && v < n,
                "Graph::new: edge ({u},{v}) out of range for {n} nodes"
            );
            sym.push((u, v));
            if u != v {
                sym.push((v, u));
            }
        }
        let adjacency = Arc::new(CsrStructure::from_edges(n, n, &sym));
        let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
        Self {
            adjacency,
            features,
            labels,
            n_classes,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.adjacency.n_rows()
    }

    /// Number of *undirected* edges (stored entry pairs are counted once;
    /// self-loops count once).
    pub fn n_edges(&self) -> usize {
        let nnz = self.adjacency.nnz();
        let self_loops = (0..self.n_nodes())
            .filter(|&i| self.adjacency.find(i, i).is_some())
            .count();
        (nnz - self_loops) / 2 + self_loops
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of label classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The symmetric adjacency structure.
    pub fn adjacency(&self) -> &Arc<CsrStructure> {
        &self.adjacency
    }

    /// Node feature matrix (`n × f`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Replaces the feature matrix (used by dataset transforms).
    pub fn set_features(&mut self, features: Matrix) {
        assert_eq!(
            features.rows(),
            self.n_nodes(),
            "set_features: row mismatch"
        );
        self.features = features;
    }

    /// Node labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Neighbours of `v` (sorted, deduplicated).
    pub fn neighbors(&self, v: usize) -> &[usize] {
        self.adjacency.row_indices(v)
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency.row_nnz(v)
    }

    /// Average degree over all nodes.
    pub fn avg_degree(&self) -> f64 {
        if self.n_nodes() == 0 {
            0.0
        } else {
            self.adjacency.nnz() as f64 / self.n_nodes() as f64
        }
    }

    /// True when `u` and `v` are adjacent.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adjacency.find(u, v).is_some()
    }

    /// Edge homophily: fraction of (directed) stored edges whose endpoints
    /// share a label. A quick sanity statistic for generated datasets.
    pub fn edge_homophily(&self) -> f64 {
        if self.adjacency.nnz() == 0 {
            return 0.0;
        }
        let same = self
            .adjacency
            .iter_entries()
            .filter(|&(u, v, _)| self.labels[u] == self.labels[v])
            .count();
        same as f64 / self.adjacency.nnz() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::new(
            3,
            &[(0, 1), (1, 2), (2, 0)],
            Matrix::identity(3),
            vec![0, 0, 1],
        )
    }

    #[test]
    fn symmetry_and_counts() {
        let g = triangle();
        assert_eq!(g.n_nodes(), 3);
        assert_eq!(g.n_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.n_classes(), 2);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::new(
            4,
            &[(2, 0), (2, 3), (2, 1)],
            Matrix::zeros(4, 1),
            vec![0; 4],
        );
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn self_loop_counted_once() {
        let g = Graph::new(2, &[(0, 0), (0, 1)], Matrix::zeros(2, 1), vec![0, 1]);
        assert_eq!(g.n_edges(), 2);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn homophily_triangle() {
        let g = triangle();
        // edges: (0,1) same, (1,2) diff, (2,0) diff -> 2/6 directed same
        assert!((g.edge_homophily() - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_out_of_range_panics() {
        Graph::new(2, &[(0, 5)], Matrix::zeros(2, 1), vec![0, 0]);
    }
}
