//! Adjacency normalisations used by the GNN backbones.

use std::sync::Arc;

use ses_tensor::{CsrMatrix, CsrStructure};

use crate::graph::Graph;

/// Adds a self-loop to every node of `structure` and returns the new
/// structure (idempotent when loops already exist).
pub fn with_self_loops(structure: &CsrStructure) -> Arc<CsrStructure> {
    let n = structure.n_rows();
    let mut edges = structure.to_edges();
    edges.extend((0..n).map(|i| (i, i)));
    Arc::new(CsrStructure::from_edges(n, structure.n_cols(), &edges))
}

/// GCN symmetric normalisation `D^{-1/2} (A + I) D^{-1/2}` as a CSR matrix.
pub fn gcn_norm(graph: &Graph) -> CsrMatrix {
    let s = with_self_loops(graph.adjacency());
    sym_norm_values(&s)
}

/// Symmetric normalisation of an arbitrary structure (degree computed from
/// the structure itself): `val(i, j) = 1 / sqrt(d_i · d_j)`.
pub fn sym_norm_values(structure: &Arc<CsrStructure>) -> CsrMatrix {
    let n = structure.n_rows();
    let deg: Vec<f32> = (0..n).map(|i| structure.row_nnz(i) as f32).collect();
    let mut values = vec![0.0f32; structure.nnz()];
    for (r, c, p) in structure.iter_entries() {
        let d = (deg[r] * deg[c]).sqrt();
        values[p] = if d > 0.0 { 1.0 / d } else { 0.0 };
    }
    CsrMatrix::new(Arc::clone(structure), values)
}

/// Row normalisation `D^{-1} A` (mean aggregation, GraphSAGE-style).
pub fn row_norm_values(structure: &Arc<CsrStructure>) -> CsrMatrix {
    let n = structure.n_rows();
    let mut values = vec![0.0f32; structure.nnz()];
    for r in 0..n {
        if structure.row_nnz(r) == 0 {
            continue;
        }
        let d = structure.row_nnz(r) as f32;
        for p in structure.row_range(r) {
            values[p] = 1.0 / d;
        }
    }
    CsrMatrix::new(Arc::clone(structure), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_tensor::Matrix;

    fn path3() -> Graph {
        Graph::new(3, &[(0, 1), (1, 2)], Matrix::zeros(3, 1), vec![0; 3])
    }

    #[test]
    fn self_loops_added_once() {
        let g = path3();
        let s1 = with_self_loops(g.adjacency());
        assert_eq!(s1.nnz(), g.adjacency().nnz() + 3);
        let s2 = with_self_loops(&s1);
        assert_eq!(s2.nnz(), s1.nnz(), "idempotent");
    }

    #[test]
    fn gcn_norm_rows_reasonable() {
        let g = path3();
        let a = gcn_norm(&g);
        // node 1 has degree 3 (self-loop + two neighbours):
        // val(1,1) = 1/3; val(1,0) = 1/sqrt(3*2)
        assert!((a.get(1, 1) - 1.0 / 3.0).abs() < 1e-6);
        assert!((a.get(1, 0) - 1.0 / (6.0f32).sqrt()).abs() < 1e-6);
        // symmetry
        assert!((a.get(0, 1) - a.get(1, 0)).abs() < 1e-7);
    }

    #[test]
    fn row_norm_rows_sum_to_one() {
        let g = path3();
        let s = with_self_loops(g.adjacency());
        let a = row_norm_values(&s);
        for r in 0..3 {
            let sum: f32 = s.row_range(r).map(|p| a.values()[p]).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }
}
