//! Induced subgraph extraction with index mapping — the working unit of
//! per-instance explainers (GNNExplainer, PGMExplainer operate on a node's
//! k-hop ego network, not the full graph).

use ses_tensor::Matrix;

use crate::graph::Graph;
use crate::khop::bfs_distances;

/// An induced subgraph plus the mapping between local and global node ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced subgraph (local ids `0..len`).
    pub graph: Graph,
    /// `global_of[local] = global` node id.
    pub global_of: Vec<usize>,
    /// Local id of the centre node the subgraph was extracted around.
    pub center_local: usize,
}

impl Subgraph {
    /// Extracts the k-hop ego network around `center`.
    pub fn ego(graph: &Graph, center: usize, k: usize) -> Self {
        let dist = bfs_distances(graph, center, k);
        let global_of: Vec<usize> = (0..graph.n_nodes()).filter(|&v| dist[v] <= k).collect();
        Self::induced(graph, &global_of, center)
    }

    /// Extracts the subgraph induced by `nodes` (must contain `center`).
    pub fn induced(graph: &Graph, nodes: &[usize], center: usize) -> Self {
        let mut local_of = vec![usize::MAX; graph.n_nodes()];
        for (l, &g) in nodes.iter().enumerate() {
            local_of[g] = l;
        }
        assert!(
            local_of[center] != usize::MAX,
            "induced: centre must be in node set"
        );
        let mut edges = Vec::new();
        for (l, &g) in nodes.iter().enumerate() {
            for &nb in graph.neighbors(g) {
                let ln = local_of[nb];
                if ln != usize::MAX && l < ln {
                    edges.push((l, ln));
                }
            }
        }
        let mut feats = Matrix::zeros(nodes.len(), graph.n_features());
        for (l, &g) in nodes.iter().enumerate() {
            feats.row_mut(l).copy_from_slice(graph.features().row(g));
        }
        let labels: Vec<usize> = nodes.iter().map(|&g| graph.labels()[g]).collect();
        // preserve the global class count by building labels directly
        let sub = Graph::new(nodes.len(), &edges, feats, labels);
        Self {
            graph: sub,
            global_of: nodes.to_vec(),
            center_local: local_of[center],
        }
    }

    /// Number of nodes in the subgraph.
    pub fn len(&self) -> usize {
        self.global_of.len()
    }

    /// True when the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.global_of.is_empty()
    }

    /// Translates a local edge to global ids.
    pub fn to_global_edge(&self, u_local: usize, v_local: usize) -> (usize, usize) {
        (self.global_of[u_local], self.global_of[v_local])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::new(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
            Matrix::from_vec(5, 2, (0..10).map(|x| x as f32).collect()),
            vec![0, 1, 0, 1, 0],
        )
    }

    #[test]
    fn ego_radius_one() {
        let g = path5();
        let s = Subgraph::ego(&g, 2, 1);
        assert_eq!(s.global_of, vec![1, 2, 3]);
        assert_eq!(s.center_local, 1);
        assert_eq!(s.graph.n_edges(), 2);
        // features carried over
        assert_eq!(s.graph.features().row(0), g.features().row(1));
        assert_eq!(s.graph.labels(), &[1, 0, 1]);
    }

    #[test]
    fn ego_covers_all_at_large_k() {
        let g = path5();
        let s = Subgraph::ego(&g, 0, 10);
        assert_eq!(s.len(), 5);
        assert_eq!(s.graph.n_edges(), 4);
    }

    #[test]
    fn edge_mapping_roundtrip() {
        let g = path5();
        let s = Subgraph::ego(&g, 2, 1);
        let (u, v) = s.to_global_edge(0, 1);
        assert!(g.has_edge(u, v));
    }
}
