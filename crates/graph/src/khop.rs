//! k-hop adjacency expansion `A^{(k)}` and its complement sampling support.
//!
//! The SES mask generator scores every edge of `A^{(k)}` (node pairs within
//! `k` hops), so the expansion is a first-class object here.

use std::collections::VecDeque;
use std::sync::Arc;

use ses_tensor::CsrStructure;

use crate::graph::Graph;

/// Computes the k-hop adjacency structure: entry `(i, j)` is present iff
/// `0 < dist(i, j) ≤ k`. Self-pairs are excluded.
///
/// Implemented as a truncated BFS from every node, which is
/// `O(|V| · (avg_deg)^k)` for sparse graphs — fine for the paper's datasets.
pub fn khop_structure(graph: &Graph, k: usize) -> Arc<CsrStructure> {
    assert!(k >= 1, "khop_structure: k must be at least 1");
    let n = graph.n_nodes();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut dist = vec![usize::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut queue = VecDeque::new();
    for src in 0..n {
        dist[src] = 0;
        touched.push(src);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            if dist[u] == k {
                continue;
            }
            for &v in graph.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    touched.push(v);
                    queue.push_back(v);
                }
            }
        }
        for &v in &touched {
            if v != src {
                edges.push((src, v));
            }
        }
        for &v in &touched {
            dist[v] = usize::MAX;
        }
        touched.clear();
        queue.clear();
    }
    Arc::new(CsrStructure::from_edges(n, n, &edges))
}

/// Memory-capped k-hop expansion: like [`khop_structure`] but keeps at most
/// `cap` neighbours per node, preferring the *nearest* ones (BFS order).
///
/// The SES paper lists memory optimisation as future work — on dense graphs
/// `A^{(k)}` approaches `|V|²` entries, and both SEGNN and SES "come with
/// the trade-off of higher memory demands". Capping per-node neighbourhoods
/// bounds the structure-mask size at `O(|V| · cap)` while preserving the
/// nearest (most explanation-relevant) pairs.
pub fn khop_structure_capped(graph: &Graph, k: usize, cap: usize) -> Arc<CsrStructure> {
    assert!(
        k >= 1 && cap >= 1,
        "khop_structure_capped: k and cap must be ≥ 1"
    );
    let n = graph.n_nodes();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut dist = vec![usize::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut queue = VecDeque::new();
    for src in 0..n {
        dist[src] = 0;
        touched.push(src);
        queue.push_back(src);
        let mut kept = 0usize;
        // BFS visits in non-decreasing distance, so the first `cap`
        // discovered nodes are the nearest ones.
        'bfs: while let Some(u) = queue.pop_front() {
            if dist[u] == k {
                continue;
            }
            for &v in graph.neighbors(u) {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    touched.push(v);
                    queue.push_back(v);
                    edges.push((src, v));
                    kept += 1;
                    if kept == cap {
                        break 'bfs;
                    }
                }
            }
        }
        for &v in &touched {
            dist[v] = usize::MAX;
        }
        touched.clear();
        queue.clear();
    }
    Arc::new(CsrStructure::from_edges(n, n, &edges))
}

/// BFS distances from `src`, truncated at `max_dist` (unreached nodes get
/// `usize::MAX`).
pub fn bfs_distances(graph: &Graph, src: usize, max_dist: usize) -> Vec<usize> {
    let n = graph.n_nodes();
    let mut dist = vec![usize::MAX; n];
    dist[src] = 0;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        if dist[u] == max_dist {
            continue;
        }
        for &v in graph.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The node set of the k-hop ego network around `center` (excluding the
/// centre itself), sorted.
pub fn khop_neighbors(graph: &Graph, center: usize, k: usize) -> Vec<usize> {
    let dist = bfs_distances(graph, center, k);
    (0..graph.n_nodes())
        .filter(|&v| v != center && dist[v] <= k)
        .collect()
}

/// Number of connected components (union over all edges).
pub fn n_connected_components(graph: &Graph) -> usize {
    let n = graph.n_nodes();
    let mut seen = vec![false; n];
    let mut components = 0;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        components += 1;
        seen[s] = true;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_tensor::Matrix;

    /// Path graph 0-1-2-3-4.
    fn path5() -> Graph {
        Graph::new(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4)],
            Matrix::zeros(5, 1),
            vec![0; 5],
        )
    }

    #[test]
    fn one_hop_equals_adjacency() {
        let g = path5();
        let k1 = khop_structure(&g, 1);
        assert_eq!(k1.to_edges(), g.adjacency().to_edges());
    }

    #[test]
    fn two_hop_on_path() {
        let g = path5();
        let k2 = khop_structure(&g, 2);
        assert_eq!(k2.row_indices(0), &[1, 2]);
        assert_eq!(k2.row_indices(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn khop_monotone_in_k() {
        let g = path5();
        let k1 = khop_structure(&g, 1);
        let k2 = khop_structure(&g, 2);
        let k3 = khop_structure(&g, 3);
        assert!(k1.nnz() <= k2.nnz() && k2.nnz() <= k3.nnz());
        for (r, c, _) in k1.iter_entries() {
            assert!(
                k2.find(r, c).is_some(),
                "k=2 must contain k=1 edge ({r},{c})"
            );
        }
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path5();
        let d = bfs_distances(&g, 0, usize::MAX);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d2 = bfs_distances(&g, 0, 2);
        assert_eq!(d2[3], usize::MAX);
    }

    #[test]
    fn khop_neighbors_excludes_center() {
        let g = path5();
        assert_eq!(khop_neighbors(&g, 2, 1), vec![1, 3]);
        assert_eq!(khop_neighbors(&g, 2, 2), vec![0, 1, 3, 4]);
    }

    #[test]
    fn capped_khop_bounds_degree_and_prefers_near() {
        let g = path5();
        let capped = khop_structure_capped(&g, 3, 2);
        for v in 0..5 {
            assert!(capped.row_nnz(v) <= 2, "cap violated at node {v}");
        }
        // node 0's nearest two within 3 hops are 1 (dist 1) and 2 (dist 2)
        assert_eq!(capped.row_indices(0), &[1, 2]);
        // a large cap reproduces the uncapped structure
        let full = khop_structure(&g, 2);
        let big = khop_structure_capped(&g, 2, 100);
        assert_eq!(full.to_edges(), big.to_edges());
    }

    #[test]
    fn components_counted() {
        let g = Graph::new(4, &[(0, 1), (2, 3)], Matrix::zeros(4, 1), vec![0; 4]);
        assert_eq!(n_connected_components(&g), 2);
        assert_eq!(n_connected_components(&path5()), 1);
    }
}
