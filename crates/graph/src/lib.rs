//! `ses-graph` — graph data structures and algorithms for the SES workspace.
//!
//! Provides the attributed [`Graph`] type (symmetric CSR adjacency, dense
//! features, labels), k-hop expansion (`A^{(k)}`), negative sampling over the
//! k-hop complement, adjacency normalisations, and the random-graph
//! generators the datasets are built from.

pub mod generators;
pub mod graph;
pub mod khop;
pub mod norm;
pub mod sampling;
pub mod subgraph;

pub use graph::Graph;
pub use khop::{
    bfs_distances, khop_neighbors, khop_structure, khop_structure_capped, n_connected_components,
};
pub use norm::{gcn_norm, row_norm_values, sym_norm_values, with_self_loops};
pub use sampling::NegativeSets;
pub use subgraph::Subgraph;
