//! Concurrency property tests for the observability runtime, companion to
//! the `ses-race` model-checked suite: where ses-race explores interleavings
//! of a few operations exhaustively, these tests hammer the real atomics
//! with real threads at volume and assert the documented accounting
//! invariants hold exactly.
//!
//! 1. Concurrent-writer `LogHistogram`: N writer threads × M records each
//!    must produce the same count, sum, and quantiles as a single-threaded
//!    reference recording of the same values (relaxed per-bucket tallies
//!    lose nothing once all writers are joined).
//! 2. Trace-buffer overflow: pushing past the [`EVENT_CAP`] completed-event
//!    buffer must account for every single span — `trace.dropped` equals
//!    issued minus buffered, with the buffer pinned at exactly `EVENT_CAP`.

use proptest::prelude::*;
use ses_obs::hist::{HistSnapshot, LogHistogram, RELATIVE_ERROR_BOUND};
use ses_obs::trace::{self, EVENT_CAP};

/// Both tests flip the process-wide enabled override and the second owns the
/// global trace buffer; serialize them so libtest's parallel runner cannot
/// interleave the toggles.
static GLOBAL_OBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Exact rank-based quantile matching `HistSnapshot::quantile` semantics.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concurrent_writers_match_single_threaded_reference(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000_000_000, 1..256), 2..7),
    ) {
        let _serial = GLOBAL_OBS.lock().unwrap_or_else(|e| e.into_inner());
        ses_obs::set_enabled_override(Some(true));
        static H: LogHistogram = LogHistogram::new("test.concurrency_props");
        H.reset();
        std::thread::scope(|s| {
            for chunk in &chunks {
                s.spawn(move || {
                    for &v in chunk {
                        H.record(v);
                    }
                });
            }
        });
        let concurrent = H.snapshot();
        ses_obs::set_enabled_override(None);

        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let mut reference = HistSnapshot::new();
        for &v in &all {
            reference.record(v);
        }

        // Exact accounting: nothing lost or double-counted across writers.
        prop_assert_eq!(concurrent.count(), all.len() as u64);
        prop_assert_eq!(concurrent.count(), reference.count());
        prop_assert_eq!(concurrent.sum(), all.iter().sum::<u64>());
        prop_assert_eq!(concurrent.max(), reference.max());
        prop_assert_eq!(&concurrent, &reference);

        // Quantiles agree with the reference exactly, and both stay inside
        // the documented relative-error bound of the true sample quantile.
        let mut sorted = all;
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let est = concurrent.quantile(q);
            prop_assert_eq!(est, reference.quantile(q));
            let exact = exact_quantile(&sorted, q);
            let tol = (exact as f64 * RELATIVE_ERROR_BOUND).ceil() as u64 + 1;
            prop_assert!(
                est.abs_diff(exact) <= tol,
                "q={}: concurrent estimate {} vs exact {} exceeds tolerance {}",
                q, est, exact, tol
            );
        }
    }
}

proptest! {
    // Each case issues >2^16 spans; a handful of cases is plenty.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn trace_dropped_equals_issued_minus_buffered_on_overflow(
        extra in 1usize..512,
    ) {
        let _serial = GLOBAL_OBS.lock().unwrap_or_else(|e| e.into_inner());
        ses_obs::set_enabled_override(Some(true));
        trace::reset_events();
        let dropped_before = ses_obs::metrics::TRACE_DROPPED.get();

        // One completed event per span drop, plus one for the request root;
        // everything past EVENT_CAP must land in `trace.dropped`.
        let mut issued = 0u64;
        {
            let req = trace::request("props.overflow");
            prop_assert!(req.trace_id().is_some());
            for _ in 0..(EVENT_CAP + extra) {
                let _s = ses_obs::spans::span("props.overflow_span");
                issued += 1;
            }
            drop(req);
            issued += 1;
        }

        let buffered = trace::take_events().len();
        let dropped = ses_obs::metrics::TRACE_DROPPED.get() - dropped_before;
        ses_obs::set_enabled_override(None);

        prop_assert_eq!(buffered, EVENT_CAP, "buffer must clamp at EVENT_CAP");
        prop_assert_eq!(
            dropped,
            issued - buffered as u64,
            "every span past the cap must be counted: issued={} buffered={}",
            issued, buffered
        );
    }
}
