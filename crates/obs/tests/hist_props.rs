//! Property tests for the log-linear histogram: quantile estimates stay
//! within the documented relative-error bound of exact sorted-sample
//! quantiles for arbitrary inputs, and snapshot merging is associative —
//! per-thread histograms combine to the same distribution in any grouping.

use proptest::prelude::*;
use ses_obs::hist::{HistSnapshot, LogHistogram, RELATIVE_ERROR_BOUND};

/// Exact rank-based quantile matching `HistSnapshot::quantile` semantics:
/// `sorted[ceil(q·n) - 1]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(values: &[u64]) -> HistSnapshot {
    let mut h = HistSnapshot::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_documented_relative_error(
        values in proptest::collection::vec(0u64..10_000_000_000, 1..512),
    ) {
        let h = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            // The documented contract: exact below the linear cutoff,
            // otherwise within RELATIVE_ERROR_BOUND of the true sample
            // (+1 for integer midpoint rounding).
            let tol = (exact as f64 * RELATIVE_ERROR_BOUND).ceil() as u64 + 1;
            prop_assert!(
                est.abs_diff(exact) <= tol,
                "q={}: estimate {} vs exact {} exceeds tolerance {}",
                q, est, exact, tol
            );
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..128),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..128),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..128),
    ) {
        let (ha, hb, hc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        // c ⊕ b ⊕ a (commuted)
        let mut commuted = hc.clone();
        commuted.merge(&hb);
        commuted.merge(&ha);
        // Recording everything into one histogram directly.
        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        let direct = snapshot_of(&all);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &commuted);
        prop_assert_eq!(&left, &direct);
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(left.quantile(q), direct.quantile(q));
        }
    }

    #[test]
    fn per_thread_recording_merges_to_the_serial_distribution(
        chunks in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000_000, 1..64), 1..4),
    ) {
        // Record each chunk into one shared atomic histogram from its own
        // thread; the result must equal the serial single-thread snapshot.
        ses_obs::set_enabled_override(Some(true));
        static H: LogHistogram = LogHistogram::new("test.props_mt");
        H.reset();
        std::thread::scope(|s| {
            for chunk in &chunks {
                s.spawn(move || {
                    for &v in chunk {
                        H.record(v);
                    }
                });
            }
        });
        let concurrent = H.snapshot();
        ses_obs::set_enabled_override(None);

        let all: Vec<u64> = chunks.iter().flatten().copied().collect();
        let serial = snapshot_of(&all);
        prop_assert_eq!(concurrent, serial);
    }
}
