//! Span-based tracer: RAII guards aggregate wall-clock time per static span
//! name into a fixed table of atomics.
//!
//! Design constraints (shared with the kernel `par` layer):
//!
//! * **Lock-free record path.** A guard dropping on a `par` worker thread
//!   only touches relaxed atomics — no mutex, no allocation.
//! * **Static names.** Span names are `&'static str` literals
//!   (`"kernel.spmm"`, `"tape.backward"`, …), so slot lookup is a linear
//!   scan over a small table comparing string contents. The table has
//!   [`CAP`] slots; the workspace uses a couple of dozen distinct names.
//! * **Nesting awareness.** A thread-local depth counter tracks how deeply
//!   spans nest on the current thread; [`depth`] exposes it for tests and
//!   indented debug output. Aggregation itself is flat per name: a span's
//!   recorded time includes its children (self-time can be derived from the
//!   table when needed).

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use crate::sync::{AtomicU64, AtomicU8, Mutex};
use std::time::Instant;

/// Maximum number of distinct span names per process. Claiming a slot past
/// this capacity silently drops the span (never panics in the hot path).
const CAP: usize = 128;

// ---------------------------------------------------------------------------
// Collapsed-stack capture (`SES_OBS_TREE=1`)
//
// Flat per-name aggregation loses *where* time was spent: `kernel.spmm`
// under `trainer.forward` and under `ses.phase.epl` land in one row. Tree
// mode additionally keys time by the full span path on the recording thread
// and exports flamegraph-compatible collapsed-stack lines
// (`a;b;c <self_ns>`) at summary time. It is opt-in precisely because the
// record path stops being lock-free: each guard drop takes a mutex on a
// shared path table, which is fine for a profiling run and wrong for a
// production one.
// ---------------------------------------------------------------------------

/// Tree-mode override: 0 = follow `SES_OBS_TREE`, 1 = forced off,
/// 2 = forced on (tests).
static TREE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn tree_env() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("SES_OBS_TREE") {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "off"),
        Err(_) => false,
    })
}

/// Is collapsed-stack capture active? (`SES_OBS_TREE=1`, or a test
/// override.) Spans still honour the global [`crate::enabled`] gate first.
pub fn tree_enabled() -> bool {
    // ordering: independent mode flag; no data guarded
    match TREE_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => tree_env(),
    }
}

/// Forces tree capture on/off regardless of `SES_OBS_TREE` (`None` returns
/// to the environment setting). Test helper, mirroring
/// [`crate::set_enabled_override`].
pub fn set_tree_override(on: Option<bool>) {
    TREE_OVERRIDE.store(
        match on {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        },
        Ordering::Relaxed, // ordering: independent mode flag; no data guarded
    );
}

/// `path -> (count, self_ns)` over every recording thread.
fn tree_table() -> &'static Mutex<HashMap<String, (u64, u64)>> {
    static TABLE: OnceLock<Mutex<HashMap<String, (u64, u64)>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    /// This thread's open-span path: `(name, accumulated child ns)` per
    /// level. Child time is subtracted on drop so each collapsed line
    /// carries *self* time, the value flamegraph tooling expects.
    static PATH: std::cell::RefCell<Vec<(&'static str, u64)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

struct Slot {
    name: OnceLock<&'static str>,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            name: OnceLock::new(),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

static TABLE: [Slot; CAP] = [const { Slot::new() }; CAP];

thread_local! {
    static DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn depth() -> usize {
    DEPTH.with(|d| d.get())
}

/// Finds or claims the slot for `name`. Lock-free: an empty slot is claimed
/// with `OnceLock::set`; on a lost race the scan simply continues (the
/// winner may have claimed it for the same or a different name).
fn slot_for(name: &'static str) -> Option<&'static Slot> {
    for slot in TABLE.iter() {
        match slot.name.get() {
            Some(n) if *n == name => return Some(slot),
            Some(_) => continue,
            None => {
                if slot.name.set(name).is_ok() || slot.name.get() == Some(&name) {
                    return Some(slot);
                }
            }
        }
    }
    None
}

/// RAII timing guard returned by [`span`]. Records elapsed wall-clock time
/// into the aggregation table when dropped; inert when telemetry is off.
/// While a trace is active on the opening thread (see [`crate::trace`]),
/// the guard additionally carries a trace frame and emits a
/// [`crate::trace::SpanEvent`] on drop.
pub struct SpanGuard {
    slot: Option<&'static Slot>,
    start: Option<Instant>,
    in_tree: bool,
    trace: Option<crate::trace::Frame>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(slot), Some(start)) = (self.slot, self.start) {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            slot.count.fetch_add(1, Ordering::Relaxed); // ordering: relaxed tally; rows read as telemetry
            slot.total_ns.fetch_add(ns, Ordering::Relaxed); // ordering: relaxed tally; rows read as telemetry
            slot.max_ns.fetch_max(ns, Ordering::Relaxed); // ordering: high-watermark tally
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            if self.in_tree {
                record_tree_exit(ns);
            }
            if let Some(frame) = self.trace.take() {
                let name = slot.name.get().copied().unwrap_or("span");
                crate::trace::exit_span(frame, name, start, ns);
            }
        }
    }
}

/// Pops the innermost path entry and charges its self time (elapsed minus
/// accumulated child time) to the collapsed stack it closes; the full
/// elapsed time rolls up into the parent's child accumulator.
fn record_tree_exit(elapsed_ns: u64) {
    let (path, self_ns) = PATH.with(|p| {
        let mut stack = p.borrow_mut();
        let Some((name, child_ns)) = stack.pop() else {
            return (String::new(), 0);
        };
        let mut path = String::new();
        for (frame, _) in stack.iter() {
            path.push_str(frame);
            path.push(';');
        }
        path.push_str(name);
        if let Some((_, parent_child)) = stack.last_mut() {
            *parent_child = parent_child.saturating_add(elapsed_ns);
        }
        (path, elapsed_ns.saturating_sub(child_ns))
    });
    if !path.is_empty() {
        let mut table = tree_table().lock().unwrap_or_else(|e| e.into_inner());
        let entry = table.entry(path).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += self_ns;
    }
}

/// Opens a named span. Prefer the [`crate::span!`] macro at call sites.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            slot: None,
            start: None,
            in_tree: false,
            trace: None,
        };
    }
    let slot = slot_for(name);
    let mut in_tree = false;
    let mut trace = None;
    if slot.is_some() {
        DEPTH.with(|d| d.set(d.get() + 1));
        if tree_enabled() {
            PATH.with(|p| p.borrow_mut().push((name, 0)));
            in_tree = true;
        }
        trace = crate::trace::enter_span();
    }
    SpanGuard {
        slot,
        start: slot.map(|_| Instant::now()),
        in_tree,
        trace,
    }
}

/// Collapsed-stack lines (`path;to;span <self_ns>`) aggregated across all
/// threads since the last [`tree_reset`], sorted by path for stable output.
/// Feed straight into flamegraph tooling. Empty when tree mode never
/// captured anything.
pub fn tree_lines() -> Vec<String> {
    let table = tree_table().lock().unwrap_or_else(|e| e.into_inner());
    let mut lines: Vec<(String, u64)> = table
        .iter()
        .map(|(path, &(_, self_ns))| (path.clone(), self_ns))
        .collect();
    drop(table);
    lines.sort();
    lines
        .into_iter()
        .map(|(path, ns)| format!("{path} {ns}"))
        .collect()
}

/// Clears the collapsed-stack table (open spans keep recording).
pub fn tree_reset() {
    tree_table()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

/// One row of the aggregated span table.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Snapshot of all spans recorded so far (unordered; callers sort).
pub fn snapshot() -> Vec<SpanStat> {
    let mut out = Vec::new();
    for slot in TABLE.iter() {
        let Some(name) = slot.name.get() else { break };
        let count = slot.count.load(Ordering::Relaxed); // ordering: telemetry read; staleness is fine
        if count == 0 {
            continue;
        }
        out.push(SpanStat {
            name,
            count,
            total_ns: slot.total_ns.load(Ordering::Relaxed), // ordering: telemetry read; staleness is fine
            max_ns: slot.max_ns.load(Ordering::Relaxed), // ordering: telemetry read; staleness is fine
        });
    }
    out
}

/// Difference between the current table and an earlier [`snapshot`]: spans
/// whose count grew, with count/total deltas. Used for per-epoch kernel
/// time breakdowns (`max_ns` is carried from the current table, not
/// differenced — maxima don't subtract).
pub fn delta_since(before: &[SpanStat]) -> Vec<SpanStat> {
    let now = snapshot();
    now.into_iter()
        .filter_map(|s| {
            let prev = before.iter().find(|p| p.name == s.name);
            let (c0, t0) = prev.map_or((0, 0), |p| (p.count, p.total_ns));
            (s.count > c0).then(|| SpanStat {
                name: s.name,
                count: s.count - c0,
                total_ns: s.total_ns.saturating_sub(t0),
                max_ns: s.max_ns,
            })
        })
        .collect()
}

/// Zeroes all span statistics (names stay claimed). Test/bench helper.
pub fn reset() {
    for slot in TABLE.iter() {
        if slot.name.get().is_none() {
            break;
        }
        slot.count.store(0, Ordering::Relaxed); // ordering: test/bench zeroing; nobody synchronises on it
        slot.total_ns.store(0, Ordering::Relaxed); // ordering: test/bench zeroing
        slot.max_ns.store(0, Ordering::Relaxed); // ordering: test/bench zeroing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_tracks_depth_and_aggregates() {
        crate::set_enabled_override(Some(true));
        let before = snapshot();
        let base = depth();
        {
            let _a = span("test.outer");
            assert_eq!(depth(), base + 1);
            {
                let _b = span("test.inner");
                assert_eq!(depth(), base + 2);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(depth(), base + 1);
            let _b2 = span("test.inner");
        }
        assert_eq!(depth(), base);
        let delta = delta_since(&before);
        let outer = delta.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = delta.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        // outer encloses inner's sleep, so its total must be at least as large
        assert!(outer.total_ns >= inner.max_ns);
        assert!(inner.total_ns > 0);
        assert!(inner.max_ns <= inner.total_ns);
        crate::set_enabled_override(None);
    }

    #[test]
    fn disabled_span_records_nothing() {
        crate::set_enabled_override(Some(false));
        let before = snapshot();
        {
            let _g = span("test.disabled");
        }
        let delta = delta_since(&before);
        assert!(delta.iter().all(|s| s.name != "test.disabled"));
        crate::set_enabled_override(None);
    }

    #[test]
    fn tree_mode_collapses_stacks_with_self_time() {
        crate::set_enabled_override(Some(true));
        set_tree_override(Some(true));
        tree_reset();
        {
            let _a = span("test.tree_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = span("test.tree_inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let lines = tree_lines();
        set_tree_override(None);
        crate::set_enabled_override(None);

        let ns_of = |prefix: &str| -> u64 {
            let line = lines
                .iter()
                .find(|l| l.rsplit_once(' ').is_some_and(|(p, _)| p == prefix))
                .unwrap_or_else(|| panic!("missing collapsed line for {prefix}: {lines:?}"));
            line.rsplit_once(' ').unwrap().1.parse().expect("ns value")
        };
        let outer_self = ns_of("test.tree_outer");
        let inner_self = ns_of("test.tree_outer;test.tree_inner");
        // Each sleep is ~2ms of *self* time at its own level: the inner
        // sleep must not be double-counted into the outer line.
        assert!(inner_self >= 1_000_000, "inner self {inner_self}ns");
        assert!(outer_self >= 1_000_000, "outer self {outer_self}ns");
    }

    #[test]
    fn tree_mode_off_records_no_paths() {
        crate::set_enabled_override(Some(true));
        set_tree_override(Some(false));
        tree_reset();
        {
            let _a = span("test.tree_off");
        }
        let lines = tree_lines();
        set_tree_override(None);
        crate::set_enabled_override(None);
        assert!(
            lines.iter().all(|l| !l.contains("test.tree_off")),
            "tree table must stay empty with tree mode off: {lines:?}"
        );
    }

    #[test]
    fn cross_thread_aggregation_sums() {
        crate::set_enabled_override(Some(true));
        let before = snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let _g = span("test.worker");
                    }
                });
            }
        });
        let delta = delta_since(&before);
        let w = delta.iter().find(|s| s.name == "test.worker").unwrap();
        assert_eq!(w.count, 40);
        crate::set_enabled_override(None);
    }
}
