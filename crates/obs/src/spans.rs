//! Span-based tracer: RAII guards aggregate wall-clock time per static span
//! name into a fixed table of atomics.
//!
//! Design constraints (shared with the kernel `par` layer):
//!
//! * **Lock-free record path.** A guard dropping on a `par` worker thread
//!   only touches relaxed atomics — no mutex, no allocation.
//! * **Static names.** Span names are `&'static str` literals
//!   (`"kernel.spmm"`, `"tape.backward"`, …), so slot lookup is a linear
//!   scan over a small table comparing string contents. The table has
//!   [`CAP`] slots; the workspace uses a couple of dozen distinct names.
//! * **Nesting awareness.** A thread-local depth counter tracks how deeply
//!   spans nest on the current thread; [`depth`] exposes it for tests and
//!   indented debug output. Aggregation itself is flat per name: a span's
//!   recorded time includes its children (self-time can be derived from the
//!   table when needed).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Maximum number of distinct span names per process. Claiming a slot past
/// this capacity silently drops the span (never panics in the hot path).
const CAP: usize = 128;

struct Slot {
    name: OnceLock<&'static str>,
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Slot {
    const fn new() -> Self {
        Slot {
            name: OnceLock::new(),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

static TABLE: [Slot; CAP] = [const { Slot::new() }; CAP];

thread_local! {
    static DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn depth() -> usize {
    DEPTH.with(|d| d.get())
}

/// Finds or claims the slot for `name`. Lock-free: an empty slot is claimed
/// with `OnceLock::set`; on a lost race the scan simply continues (the
/// winner may have claimed it for the same or a different name).
fn slot_for(name: &'static str) -> Option<&'static Slot> {
    for slot in TABLE.iter() {
        match slot.name.get() {
            Some(n) if *n == name => return Some(slot),
            Some(_) => continue,
            None => {
                if slot.name.set(name).is_ok() || slot.name.get() == Some(&name) {
                    return Some(slot);
                }
            }
        }
    }
    None
}

/// RAII timing guard returned by [`span`]. Records elapsed wall-clock time
/// into the aggregation table when dropped; inert when telemetry is off.
pub struct SpanGuard {
    slot: Option<&'static Slot>,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(slot), Some(start)) = (self.slot, self.start) {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            slot.count.fetch_add(1, Ordering::Relaxed);
            slot.total_ns.fetch_add(ns, Ordering::Relaxed);
            slot.max_ns.fetch_max(ns, Ordering::Relaxed);
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }
}

/// Opens a named span. Prefer the [`crate::span!`] macro at call sites.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            slot: None,
            start: None,
        };
    }
    let slot = slot_for(name);
    if slot.is_some() {
        DEPTH.with(|d| d.set(d.get() + 1));
    }
    SpanGuard {
        slot,
        start: slot.map(|_| Instant::now()),
    }
}

/// One row of the aggregated span table.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    pub name: &'static str,
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Snapshot of all spans recorded so far (unordered; callers sort).
pub fn snapshot() -> Vec<SpanStat> {
    let mut out = Vec::new();
    for slot in TABLE.iter() {
        let Some(name) = slot.name.get() else { break };
        let count = slot.count.load(Ordering::Relaxed);
        if count == 0 {
            continue;
        }
        out.push(SpanStat {
            name,
            count,
            total_ns: slot.total_ns.load(Ordering::Relaxed),
            max_ns: slot.max_ns.load(Ordering::Relaxed),
        });
    }
    out
}

/// Difference between the current table and an earlier [`snapshot`]: spans
/// whose count grew, with count/total deltas. Used for per-epoch kernel
/// time breakdowns (`max_ns` is carried from the current table, not
/// differenced — maxima don't subtract).
pub fn delta_since(before: &[SpanStat]) -> Vec<SpanStat> {
    let now = snapshot();
    now.into_iter()
        .filter_map(|s| {
            let prev = before.iter().find(|p| p.name == s.name);
            let (c0, t0) = prev.map_or((0, 0), |p| (p.count, p.total_ns));
            (s.count > c0).then(|| SpanStat {
                name: s.name,
                count: s.count - c0,
                total_ns: s.total_ns.saturating_sub(t0),
                max_ns: s.max_ns,
            })
        })
        .collect()
}

/// Zeroes all span statistics (names stay claimed). Test/bench helper.
pub fn reset() {
    for slot in TABLE.iter() {
        if slot.name.get().is_none() {
            break;
        }
        slot.count.store(0, Ordering::Relaxed);
        slot.total_ns.store(0, Ordering::Relaxed);
        slot.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_tracks_depth_and_aggregates() {
        crate::set_enabled_override(Some(true));
        let before = snapshot();
        let base = depth();
        {
            let _a = span("test.outer");
            assert_eq!(depth(), base + 1);
            {
                let _b = span("test.inner");
                assert_eq!(depth(), base + 2);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(depth(), base + 1);
            let _b2 = span("test.inner");
        }
        assert_eq!(depth(), base);
        let delta = delta_since(&before);
        let outer = delta.iter().find(|s| s.name == "test.outer").unwrap();
        let inner = delta.iter().find(|s| s.name == "test.inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        // outer encloses inner's sleep, so its total must be at least as large
        assert!(outer.total_ns >= inner.max_ns);
        assert!(inner.total_ns > 0);
        assert!(inner.max_ns <= inner.total_ns);
        crate::set_enabled_override(None);
    }

    #[test]
    fn disabled_span_records_nothing() {
        crate::set_enabled_override(Some(false));
        let before = snapshot();
        {
            let _g = span("test.disabled");
        }
        let delta = delta_since(&before);
        assert!(delta.iter().all(|s| s.name != "test.disabled"));
        crate::set_enabled_override(None);
    }

    #[test]
    fn cross_thread_aggregation_sums() {
        crate::set_enabled_override(Some(true));
        let before = snapshot();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let _g = span("test.worker");
                    }
                });
            }
        });
        let delta = delta_since(&before);
        let w = delta.iter().find(|s| s.name == "test.worker").unwrap();
        assert_eq!(w.count, 40);
        crate::set_enabled_override(None);
    }
}
