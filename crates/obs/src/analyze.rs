//! Analysis over JSONL telemetry files: span aggregation, per-epoch
//! trends, noise-aware run diffing, and regeneration of measured-numbers
//! tables in markdown documents. Library half of the `ses-obs` CLI, kept
//! here so the logic is unit-testable without spawning processes.

use std::collections::BTreeMap;

use crate::json::Json;

/// One loaded telemetry run: the parsed JSONL records in file order.
#[derive(Debug, Clone, Default)]
pub struct Run {
    pub records: Vec<BTreeMap<String, Json>>,
}

impl Run {
    /// Parses JSONL content. Blank lines are skipped; a malformed line is
    /// an error naming its line number (telemetry files are machine-written
    /// — corruption should be loud).
    pub fn parse(content: &str) -> Result<Run, String> {
        let mut records = Vec::new();
        for (i, line) in content.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            match v {
                Json::Obj(m) => records.push(m),
                _ => return Err(format!("line {}: record is not a JSON object", i + 1)),
            }
        }
        Ok(Run { records })
    }

    pub fn load(path: &str) -> Result<Run, String> {
        let content =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Run::parse(&content).map_err(|e| format!("{path}: {e}"))
    }

    /// Records whose `event` field equals `event`, in file order.
    pub fn events<'a>(
        &'a self,
        event: &'a str,
    ) -> impl Iterator<Item = &'a BTreeMap<String, Json>> {
        self.records
            .iter()
            .filter(move |r| r.get("event").and_then(Json::as_str) == Some(event))
    }
}

fn get_f64(rec: &BTreeMap<String, Json>, key: &str) -> Option<f64> {
    rec.get(key).and_then(Json::as_f64)
}

fn get_str<'a>(rec: &'a BTreeMap<String, Json>, key: &str) -> Option<&'a str> {
    rec.get(key).and_then(Json::as_str)
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// Aggregate time attributed to one span name across a run's epoch
/// breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTotal {
    pub name: String,
    pub total_ms: f64,
    /// Number of epoch records contributing to the total.
    pub records: u64,
}

/// Sums the `kernels_ms` span breakdowns over all `epoch` records and
/// returns the top `n` spans by total time.
pub fn top_spans(run: &Run, n: usize) -> Vec<SpanTotal> {
    let mut acc: BTreeMap<&str, (f64, u64)> = BTreeMap::new();
    for rec in run.events("epoch") {
        if let Some(Json::Obj(kernels)) = rec.get("kernels_ms") {
            for (name, ms) in kernels {
                if let Some(ms) = ms.as_f64() {
                    let e = acc.entry(name).or_insert((0.0, 0));
                    e.0 += ms;
                    e.1 += 1;
                }
            }
        }
    }
    let mut out: Vec<SpanTotal> = acc
        .into_iter()
        .map(|(name, (total_ms, records))| SpanTotal {
            name: name.to_string(),
            total_ms,
            records,
        })
        .collect();
    out.sort_by(|a, b| {
        b.total_ms
            .partial_cmp(&a.total_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out.truncate(n);
    out
}

/// Per-phase trend digest over a run's `epoch` records.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTrend {
    pub phase: String,
    pub epochs: u64,
    pub first_loss: Option<f64>,
    pub last_loss: Option<f64>,
    pub median_epoch_ms: f64,
    pub total_ms: f64,
}

/// Groups `epoch` records by `phase` (file order preserved within a
/// phase; phases sorted by name for stable output).
pub fn trends(run: &Run) -> Vec<PhaseTrend> {
    let mut by_phase: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for rec in run.events("epoch") {
        let phase = get_str(rec, "phase").unwrap_or("?").to_string();
        let entry = by_phase.entry(phase).or_default();
        if let Some(ms) = get_f64(rec, "epoch_ms") {
            entry.0.push(ms);
        }
        if let Some(loss) = get_f64(rec, "loss") {
            entry.1.push(loss);
        }
    }
    by_phase
        .into_iter()
        .map(|(phase, (mut times, losses))| PhaseTrend {
            phase,
            epochs: times.len().max(losses.len()) as u64,
            first_loss: losses.first().copied(),
            last_loss: losses.last().copied(),
            total_ms: times.iter().sum(),
            median_epoch_ms: median(&mut times),
        })
        .collect()
}

/// Thresholds for [`diff`]. A metric is flagged only when it moves by more
/// than `rel_threshold` (relative) *and* `abs_floor_ms` (absolute) — the
/// conjunction is what makes the diff noise-aware: small times jitter by
/// large fractions, large times by small fractions, and neither alone
/// should fail a build.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    pub rel_threshold: f64,
    pub abs_floor_ms: f64,
    /// Multiplies run B's time-valued metrics before comparing: a seeded
    /// slowdown drill proving the regression path fires (`1.0` = off).
    pub scale_b: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            rel_threshold: 0.5,
            abs_floor_ms: 20.0,
            scale_b: 1.0,
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDiff {
    pub name: String,
    pub a: f64,
    pub b: f64,
    pub rel_change: f64,
    pub regressed: bool,
    pub improved: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    NoChange,
    Improvement,
    Regression,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::NoChange => "no-change",
            Verdict::Improvement => "improvement",
            Verdict::Regression => "regression",
        }
    }
}

/// Output of [`diff`].
#[derive(Debug, Clone)]
pub struct DiffReport {
    pub metrics: Vec<MetricDiff>,
    pub verdict: Verdict,
    /// Whether the runs' final per-phase losses match exactly (`None` when
    /// neither run carries losses). Deterministic seeds make bit-identical
    /// losses the expected baseline; a mismatch means the runs did
    /// different work, so timing deltas are not like-for-like.
    pub behavior_identical: Option<bool>,
}

/// Time-valued metrics of a run, in milliseconds, keyed
/// `phase/<p>/total_ms`, `phase/<p>/median_epoch_ms`, `span/<s>/total_ms`,
/// and `stage/<s>/p99_ms` (from the latest `explain_stage_latency`
/// record).
pub fn time_metrics(run: &Run) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for t in trends(run) {
        out.insert(format!("phase/{}/total_ms", t.phase), t.total_ms);
        out.insert(
            format!("phase/{}/median_epoch_ms", t.phase),
            t.median_epoch_ms,
        );
    }
    for s in top_spans(run, usize::MAX) {
        out.insert(format!("span/{}/total_ms", s.name), s.total_ms);
    }
    if let Some(stages) = run.events("explain_stage_latency").last() {
        for (key, v) in stages {
            if let (Some(stage), Some(ns)) = (key.strip_suffix("_p99_ns"), v.as_f64()) {
                out.insert(format!("stage/{stage}/p99_ms"), ns / 1e6);
            }
        }
    }
    out
}

fn final_losses(run: &Run) -> BTreeMap<String, f64> {
    trends(run)
        .into_iter()
        .filter_map(|t| t.last_loss.map(|l| (t.phase, l)))
        .collect()
}

/// Compares two runs metric-by-metric (shared metrics only) and returns a
/// verdict: `regression` if any metric slowed past both thresholds,
/// `improvement` if none regressed and at least one sped up past them,
/// `no-change` otherwise.
pub fn diff(a: &Run, b: &Run, opts: DiffOptions) -> DiffReport {
    let ma = time_metrics(a);
    let mb = time_metrics(b);
    let mut metrics = Vec::new();
    for (name, &va) in &ma {
        let Some(&vb) = mb.get(name) else { continue };
        let vb = vb * opts.scale_b;
        let delta = vb - va;
        let rel_change = if va.abs() > f64::EPSILON {
            delta / va
        } else if vb.abs() > f64::EPSILON {
            f64::INFINITY
        } else {
            0.0
        };
        let past_thresholds =
            delta.abs() >= opts.abs_floor_ms && rel_change.abs() >= opts.rel_threshold;
        metrics.push(MetricDiff {
            name: name.clone(),
            a: va,
            b: vb,
            rel_change,
            regressed: past_thresholds && delta > 0.0,
            improved: past_thresholds && delta < 0.0,
        });
    }
    let verdict = if metrics.iter().any(|m| m.regressed) {
        Verdict::Regression
    } else if metrics.iter().any(|m| m.improved) {
        Verdict::Improvement
    } else {
        Verdict::NoChange
    };
    let la = final_losses(a);
    let lb = final_losses(b);
    let behavior_identical = if la.is_empty() && lb.is_empty() {
        None
    } else {
        // lint:allow(no-float-eq): bit-identical determinism is the contract
        Some(la == lb)
    };
    DiffReport {
        metrics,
        verdict,
        behavior_identical,
    }
}

// ---------------------------------------------------------------------------
// Markdown table regeneration from bench_row records
// ---------------------------------------------------------------------------

/// Marker pair delimiting a regenerated table for one sheet:
/// `<!-- BEGIN AUTOGEN:<sheet> -->` … `<!-- END AUTOGEN:<sheet> -->`.
pub const BEGIN_MARKER: &str = "<!-- BEGIN AUTOGEN:";
/// See [`BEGIN_MARKER`].
pub const END_MARKER: &str = "<!-- END AUTOGEN:";

/// Column order for sheets whose layout is curated; other sheets fall back
/// to sorted field names.
fn sheet_columns(sheet: &str) -> Option<&'static [&'static str]> {
    match sheet {
        "ir_compile" => Some(&[
            "tape",
            "nodes_before",
            "nodes_after",
            "dce_removed",
            "cse_merged",
            "peak_bytes_before",
            "peak_bytes_after",
            "node_reduction",
            "byte_reduction",
        ]),
        _ => None,
    }
}

fn format_cell(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        // lint:allow(no-float-eq): fract()==0.0 is the idiomatic integrality
        // test — deciding display format, not comparing measurements.
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => format!("{}", *n as i64),
        Json::Num(n) => format!("{n:.3}"),
        Json::Bool(b) => b.to_string(),
        Json::Null => "—".to_string(),
        other => format!("{other:?}"),
    }
}

/// Renders the markdown table for `sheet` from a run's `bench_row`
/// records. Errors when the run has no rows for the sheet — regenerating
/// from telemetry that never produced the numbers would silently blank the
/// document.
pub fn sheet_table(run: &Run, sheet: &str) -> Result<String, String> {
    let rows: Vec<_> = run
        .events("bench_row")
        .filter(|r| get_str(r, "sheet") == Some(sheet))
        .collect();
    if rows.is_empty() {
        return Err(format!("no bench_row records for sheet `{sheet}`"));
    }
    let owned_cols: Vec<String> = match sheet_columns(sheet) {
        Some(cols) => cols.iter().map(|c| c.to_string()).collect(),
        None => {
            let mut keys: Vec<String> = rows
                .iter()
                .flat_map(|r| r.keys())
                .filter(|k| !matches!(k.as_str(), "event" | "t_ms" | "sheet"))
                .cloned()
                .collect();
            keys.sort();
            keys.dedup();
            keys
        }
    };
    let mut out = String::new();
    out.push('|');
    for c in &owned_cols {
        out.push_str(&format!(" {} |", c.replace('_', " ")));
    }
    out.push('\n');
    out.push('|');
    for _ in &owned_cols {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for c in &owned_cols {
            let cell = row.get(c.as_str()).map_or("—".to_string(), format_cell);
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Result of [`regen_markers`].
#[derive(Debug, Clone)]
pub struct RegenOutcome {
    /// Regenerated document content.
    pub content: String,
    /// Whether the content differs from the input.
    pub changed: bool,
    /// Sheets whose tables were rewritten.
    pub sheets: Vec<String>,
}

/// Rewrites every `AUTOGEN` marker section in `md` from the run's
/// `bench_row` records. Errors on unterminated markers or sheets missing
/// from the telemetry; text outside markers is untouched.
pub fn regen_markers(md: &str, run: &Run) -> Result<RegenOutcome, String> {
    let mut out = String::with_capacity(md.len());
    let mut sheets = Vec::new();
    let mut lines = md.lines().peekable();
    while let Some(line) = lines.next() {
        out.push_str(line);
        out.push('\n');
        let Some(rest) = line.trim().strip_prefix(BEGIN_MARKER) else {
            continue;
        };
        let sheet = rest.trim_end_matches("-->").trim().to_string();
        let end_line = format!("{END_MARKER}{sheet} -->");
        let mut terminated = false;
        for inner in lines.by_ref() {
            if inner.trim() == end_line {
                out.push_str(&sheet_table(run, &sheet)?);
                out.push_str(inner);
                out.push('\n');
                terminated = true;
                break;
            }
        }
        if !terminated {
            return Err(format!(
                "marker `{BEGIN_MARKER}{sheet} -->` has no matching end"
            ));
        }
        sheets.push(sheet);
    }
    // Preserve the original's trailing-newline shape.
    if !md.ends_with('\n') && out.ends_with('\n') {
        out.pop();
    }
    Ok(RegenOutcome {
        changed: out != md,
        sheets,
        content: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_from(lines: &[&str]) -> Run {
        Run::parse(&lines.join("\n")).expect("test telemetry must parse")
    }

    fn epoch(phase: &str, epoch: u64, loss: f64, ms: f64) -> String {
        format!(
            "{{\"event\":\"epoch\",\"t_ms\":1,\"phase\":\"{phase}\",\"epoch\":{epoch},\
             \"loss\":{loss},\"epoch_ms\":{ms},\
             \"kernels_ms\":{{\"kernel.spmm\":{},\"tape.backward\":{}}}}}",
            ms * 0.6,
            ms * 0.3
        )
    }

    #[test]
    fn parse_rejects_malformed_lines_with_position() {
        let err = Run::parse("{\"event\":\"x\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(Run::parse("[1,2]").is_err());
    }

    #[test]
    fn top_spans_aggregates_breakdowns() {
        let run = run_from(&[
            &epoch("backbone", 0, 1.0, 100.0),
            &epoch("backbone", 1, 0.9, 100.0),
        ]);
        let top = top_spans(&run, 10);
        assert_eq!(top[0].name, "kernel.spmm");
        assert!((top[0].total_ms - 120.0).abs() < 1e-9);
        assert_eq!(top[0].records, 2);
        assert_eq!(top[1].name, "tape.backward");
    }

    #[test]
    fn trends_group_by_phase() {
        let run = run_from(&[
            &epoch("backbone", 0, 1.0, 10.0),
            &epoch("backbone", 1, 0.5, 30.0),
            &epoch("explain", 0, 2.0, 20.0),
        ]);
        let t = trends(&run);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].phase, "backbone");
        assert_eq!(t[0].epochs, 2);
        assert_eq!(t[0].first_loss, Some(1.0));
        assert_eq!(t[0].last_loss, Some(0.5));
        assert!((t[0].median_epoch_ms - 20.0).abs() < 1e-9);
        assert!((t[0].total_ms - 40.0).abs() < 1e-9);
    }

    #[test]
    fn identical_runs_diff_to_no_change() {
        let lines = [
            epoch("backbone", 0, 1.0, 100.0),
            epoch("backbone", 1, 0.5, 110.0),
        ];
        let a = run_from(&[&lines[0], &lines[1]]);
        let report = diff(&a, &a, DiffOptions::default());
        assert_eq!(report.verdict, Verdict::NoChange);
        assert_eq!(report.behavior_identical, Some(true));
    }

    #[test]
    fn jitter_below_thresholds_is_no_change() {
        let a = run_from(&[&epoch("backbone", 0, 1.0, 100.0)]);
        let b = run_from(&[&epoch("backbone", 0, 1.0, 112.0)]); // +12%, +12ms
        let report = diff(&a, &b, DiffOptions::default());
        assert_eq!(report.verdict, Verdict::NoChange);
    }

    #[test]
    fn seeded_slowdown_is_flagged_as_regression() {
        let a = run_from(&[
            &epoch("backbone", 0, 1.0, 100.0),
            &epoch("backbone", 1, 0.5, 100.0),
        ]);
        let opts = DiffOptions {
            scale_b: 4.0,
            ..DiffOptions::default()
        };
        let report = diff(&a, &a, opts);
        assert_eq!(report.verdict, Verdict::Regression);
        assert!(report.metrics.iter().any(|m| m.regressed));
    }

    #[test]
    fn large_speedup_is_an_improvement() {
        let a = run_from(&[&epoch("backbone", 0, 1.0, 200.0)]);
        let b = run_from(&[&epoch("backbone", 0, 1.0, 40.0)]);
        let report = diff(&a, &b, DiffOptions::default());
        assert_eq!(report.verdict, Verdict::Improvement);
    }

    #[test]
    fn behavioral_difference_is_surfaced() {
        let a = run_from(&[&epoch("backbone", 0, 1.0, 100.0)]);
        let b = run_from(&[&epoch("backbone", 0, 1.25, 100.0)]);
        let report = diff(&a, &b, DiffOptions::default());
        assert_eq!(report.behavior_identical, Some(false));
    }

    #[test]
    fn stage_p99s_join_the_comparison() {
        let stage = "{\"event\":\"explain_stage_latency\",\"t_ms\":2,\
                     \"extract_p99_ns\":50000000,\"rank_p99_ns\":1000000}";
        let a = run_from(&[stage]);
        let m = time_metrics(&a);
        assert!((m["stage/extract/p99_ms"] - 50.0).abs() < 1e-9);
        assert!((m["stage/rank/p99_ms"] - 1.0).abs() < 1e-9);
    }

    const BENCH_MD: &str = "# Doc\n\n<!-- BEGIN AUTOGEN:ir_compile -->\nstale\n<!-- END AUTOGEN:ir_compile -->\ntail\n";

    fn bench_run() -> Run {
        run_from(&[
            "{\"event\":\"bench_row\",\"t_ms\":3,\"sheet\":\"ir_compile\",\
                    \"tape\":\"explain_step\",\"nodes_before\":100,\"nodes_after\":60,\
                    \"dce_removed\":30,\"cse_merged\":10,\"peak_bytes_before\":4096,\
                    \"peak_bytes_after\":2048,\"node_reduction\":0.4,\"byte_reduction\":0.5}",
        ])
    }

    #[test]
    fn regen_rewrites_marker_sections_only() {
        let out = regen_markers(BENCH_MD, &bench_run()).expect("regen");
        assert!(out.changed);
        assert_eq!(out.sheets, vec!["ir_compile".to_string()]);
        assert!(out.content.starts_with("# Doc\n"));
        assert!(out.content.ends_with("tail\n"));
        assert!(!out.content.contains("stale"));
        assert!(out
            .content
            .contains("| explain_step | 100 | 60 | 30 | 10 | 4096 | 2048 | 0.400 | 0.500 |"));
        // Idempotent: regenerating the regenerated doc changes nothing.
        let again = regen_markers(&out.content, &bench_run()).expect("regen twice");
        assert!(!again.changed);
    }

    #[test]
    fn regen_errors_on_missing_sheet_or_end_marker() {
        let no_rows = run_from(&["{\"event\":\"epoch\",\"t_ms\":1}"]);
        assert!(regen_markers(BENCH_MD, &no_rows).is_err());
        let unterminated = "<!-- BEGIN AUTOGEN:ir_compile -->\nbody\n";
        assert!(regen_markers(unterminated, &bench_run()).is_err());
    }
}
