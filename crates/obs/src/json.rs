//! Minimal recursive-descent JSON parser — enough to validate and inspect
//! the JSONL telemetry this crate emits (obs-validate, integration tests).
//!
//! Zero dependencies by design; not a general-purpose parser (no
//! `\uXXXX` surrogate-pair decoding beyond the BMP, integers parsed as
//! `f64`), which is exactly the subset [`crate::Record`] produces.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at offset {}", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!(
            "unexpected byte `{}` at offset {}",
            *c as char, *pos
        )),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("bad escape `\\{}`", *c as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 code point (multi-byte safe).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(s);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}`: {e}"))
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at offset {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut out = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, ":")?;
        let value = parse_value(b, pos)?;
        out.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x","d":{}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert!(matches!(obj.get("a"), Some(Json::Arr(a)) if a.len() == 3));
        assert_eq!(obj.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn handles_unicode_and_escapes() {
        let v = Json::parse("\"caf\u{e9} \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9} A"));
    }
}
