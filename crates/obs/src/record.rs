//! Record builder: assembles one JSONL object field-by-field and emits it
//! to the [`crate::sink`].
//!
//! Every record carries an `event` discriminator and a `t_ms` timestamp
//! (milliseconds since process start, monotonic). Non-finite numbers are
//! serialised as `null` — JSON has no NaN/Inf, and a NaN loss must not
//! corrupt the line for downstream parsers.

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Microseconds from process start (first telemetry touch) to `at`;
/// saturates to 0 for instants captured before the anchor was initialised.
pub(crate) fn since_start_us(at: Instant) -> u64 {
    let d = at
        .checked_duration_since(process_start())
        .unwrap_or_default();
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Escapes `s` as JSON string contents (without surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builder for one JSONL record. Field order is insertion order; `event`
/// and `t_ms` always come first.
pub struct Record {
    body: String,
}

impl Record {
    /// Starts a record with its `event` discriminator and process-relative
    /// timestamp.
    pub fn new(event: &str) -> Self {
        let t_ms = process_start().elapsed().as_millis();
        let mut body = String::with_capacity(128);
        let _ = write!(
            body,
            "{{\"event\":\"{}\",\"t_ms\":{t_ms}",
            escape_json(event)
        );
        Record { body }
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let _ = write!(
            self.body,
            ",\"{}\":\"{}\"",
            escape_json(key),
            escape_json(value)
        );
        self
    }

    /// Adds a floating-point field; non-finite values serialise as `null`.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            let _ = write!(self.body, ",\"{}\":{value}", escape_json(key));
        } else {
            let _ = write!(self.body, ",\"{}\":null", escape_json(key));
        }
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Self {
        let _ = write!(self.body, ",\"{}\":{value}", escape_json(key));
        self
    }

    /// Adds an unsigned integer field.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        let _ = write!(self.body, ",\"{}\":{value}", escape_json(key));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        let _ = write!(self.body, ",\"{}\":{value}", escape_json(key));
        self
    }

    /// Adds a nested object of `{name: total_ms}` pairs from span deltas —
    /// the per-epoch kernel time breakdown.
    pub fn span_breakdown(mut self, key: &str, deltas: &[crate::spans::SpanStat]) -> Self {
        let _ = write!(self.body, ",\"{}\":{{", escape_json(key));
        for (i, s) in deltas.iter().enumerate() {
            if i > 0 {
                self.body.push(',');
            }
            // lint:allow(no-f64-in-kernels): ns→ms conversion for reporting
            let ms = s.total_ns as f64 / 1e6;
            let _ = write!(self.body, "\"{}\":{ms:.3}", escape_json(s.name));
        }
        self.body.push('}');
        self
    }

    /// Finishes the object and writes it to the sink as one line.
    pub fn emit(mut self) {
        self.body.push('}');
        crate::sink::write_line(&self.body);
    }

    /// Finishes the object and returns it as a string (tests).
    pub fn into_string(mut self) -> String {
        self.body.push('}');
        self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn record_serialises_and_parses() {
        let line = Record::new("epoch")
            .str("phase", "explain")
            .int("epoch", 3)
            .num("loss", 0.5)
            .num("bad", f64::NAN)
            .bool("ok", true)
            .into_string();
        let v = Json::parse(&line).expect("record must be valid JSON");
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("event").unwrap().as_str(), Some("epoch"));
        assert_eq!(obj.get("epoch").unwrap().as_f64(), Some(3.0));
        assert_eq!(obj.get("loss").unwrap().as_f64(), Some(0.5));
        assert!(matches!(obj.get("bad").unwrap(), Json::Null));
        assert!(obj.get("t_ms").unwrap().as_f64().is_some());
    }

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        let line = Record::new("log").str("msg", "said \"hi\"\n").into_string();
        assert!(Json::parse(&line).is_ok());
    }

    #[test]
    fn span_breakdown_nests_an_object() {
        let deltas = vec![
            crate::spans::SpanStat {
                name: "kernel.spmm",
                count: 4,
                total_ns: 2_500_000,
                max_ns: 1_000_000,
            },
            crate::spans::SpanStat {
                name: "tape.backward",
                count: 1,
                total_ns: 1_000_000,
                max_ns: 1_000_000,
            },
        ];
        let line = Record::new("epoch")
            .span_breakdown("kernels_ms", &deltas)
            .into_string();
        let v = Json::parse(&line).unwrap();
        let kern = v.as_object().unwrap().get("kernels_ms").unwrap();
        let kern = kern.as_object().unwrap();
        assert_eq!(kern.get("kernel.spmm").unwrap().as_f64(), Some(2.5));
        assert_eq!(kern.get("tape.backward").unwrap().as_f64(), Some(1.0));
    }
}
