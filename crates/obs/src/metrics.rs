//! Typed metrics registry: counters, gauges, and power-of-two histograms
//! over relaxed atomics, plus the workspace's well-known instruments.
//!
//! Every instrument checks [`crate::enabled`] before touching its atomic,
//! so the disabled path is a load and a branch. The registry is static —
//! instruments are `static` items registered in the fixed arrays at the
//! bottom of this module so [`counters`]/[`histograms`] can enumerate them
//! for the summary table and the sink.

use std::sync::atomic::Ordering;

use crate::sync::{AtomicI64, AtomicU64};

use crate::hist::LogHistogram;

/// Monotone event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed); // ordering: pure event tally; nothing published
        }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // ordering: monotone tally read; staleness is fine
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Test/bench helper: zeroes the counter.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed); // ordering: test/bench zeroing; nobody synchronises on it
    }
}

/// Last-value / high-watermark gauge.
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed); // ordering: last-write-wins telemetry value; no payload
        }
    }

    /// Raises the gauge to `v` if larger (high-watermark semantics).
    #[inline]
    pub fn record_max(&self, v: i64) {
        if crate::enabled() {
            self.value.fetch_max(v, Ordering::Relaxed); // ordering: high-watermark tally; no payload
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed) // ordering: telemetry read; staleness is fine
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed); // ordering: test/bench zeroing; nobody synchronises on it
    }
}

/// Number of histogram buckets: bucket `b` counts values whose bit length
/// is `b` (i.e. `v in [2^(b-1), 2^b)`), bucket 0 counts zero, the last
/// bucket absorbs everything ≥ 2^62.
pub const HIST_BUCKETS: usize = 64;

/// Power-of-two bucketed histogram (values are `u64`, e.g. nanoseconds).
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index for a value: 0 for 0, else its bit length clamped to the
/// last bucket.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `b` (0 for bucket 0, else `2^(b-1)`).
pub fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl Histogram {
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed); // ordering: per-bucket tally; no payload
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: relaxed tally; torn count/sum tolerated
        self.sum.fetch_add(v, Ordering::Relaxed); // ordering: relaxed tally; torn count/sum tolerated
        self.max.fetch_max(v, Ordering::Relaxed); // ordering: high-watermark tally
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: telemetry read; staleness is fine
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // ordering: telemetry read; staleness is fine
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed) // ordering: telemetry read; staleness is fine
    }

    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            // lint:allow(no-f64-in-kernels): summary arithmetic, not a kernel
            self.sum() as f64 / c as f64
        }
    }

    pub fn bucket_count(&self, b: usize) -> u64 {
        self.buckets[b].load(Ordering::Relaxed) // ordering: telemetry read; staleness is fine
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // ordering: test/bench zeroing; nobody synchronises on it
        }
        self.count.store(0, Ordering::Relaxed); // ordering: test/bench zeroing
        self.sum.store(0, Ordering::Relaxed); // ordering: test/bench zeroing
        self.max.store(0, Ordering::Relaxed); // ordering: test/bench zeroing
    }
}

// ---------------------------------------------------------------------------
// Well-known instruments. Incremented from ses-tensor / ses-gnn / ses-core /
// ses-explain; enumerated by the summary table via the registries below.
// ---------------------------------------------------------------------------

/// Autodiff tape nodes pushed (all ops, all tapes).
pub static TAPE_NODES: Counter = Counter::new("tape.nodes");
/// Backward sweeps executed.
pub static TAPE_BACKWARDS: Counter = Counter::new("tape.backwards");
/// Peak node count observed on any single tape.
pub static TAPE_PEAK_NODES: Gauge = Gauge::new("tape.peak_nodes");
/// High-water mark of bytes resident in any thread's scratch pool.
pub static SCRATCH_HIGHWATER: Gauge = Gauge::new("scratch.highwater");

/// Sparse×dense matmul kernel invocations (forward + adjoints).
pub static SPMM_CALLS: Counter = Counter::new("kernel.spmm.calls");
/// Nonzeros processed across all spmm-family calls.
pub static SPMM_NNZ: Counter = Counter::new("kernel.spmm.nnz");
/// Edge-softmax kernel invocations (forward + backward).
pub static EDGE_SOFTMAX_CALLS: Counter = Counter::new("kernel.edge_softmax.calls");
/// Dense matmul-family kernel invocations.
pub static MATMUL_CALLS: Counter = Counter::new("kernel.matmul.calls");
/// Fused multiply-adds across all dense matmul-family calls.
pub static MATMUL_FLOPS: Counter = Counter::new("kernel.matmul.fmas");

/// Dense matrices allocated (zeroed/filled constructors).
pub static ALLOC_MATRICES: Counter = Counter::new("alloc.matrices");
/// Bytes allocated for dense matrix storage.
pub static ALLOC_BYTES: Counter = Counter::new("alloc.bytes");

/// Non-finite values caught by the tape sanitizer (before panicking).
pub static SAN_NONFINITE: Counter = Counter::new("sanitize.nonfinite");
/// Leaked nodes classified `AfterLoss` by the sanitizer.
pub static SAN_LEAK_AFTER_LOSS: Counter = Counter::new("sanitize.leak.after_loss");
/// Leaked nodes classified `Unused` (parameter not consumed this epoch).
pub static SAN_LEAK_UNUSED: Counter = Counter::new("sanitize.leak.unused");
/// Leaked nodes classified `Pruned` (wired in, but cut off from the loss).
pub static SAN_LEAK_PRUNED: Counter = Counter::new("sanitize.leak.pruned");

/// Nodes explained via the `ses-explain` trait harness.
pub static EXPLAIN_NODES: Counter = Counter::new("explain.nodes");
/// Per-node explanation-generation latency (nanoseconds).
pub static EXPLAIN_NODE_NS: Histogram = Histogram::new("explain.node_ns");

/// Static checks evaluated by `ses-verify` (tape-IR nodes + partition cases).
pub static VERIFY_CHECKS: Counter = Counter::new("verify.checks");
/// Errors raised by `ses-verify` engines.
pub static VERIFY_ERRORS: Counter = Counter::new("verify.errors");
/// Warnings raised by `ses-verify` engines.
pub static VERIFY_WARNINGS: Counter = Counter::new("verify.warnings");
/// `Unused` leaks observed by the trainer's per-epoch leak-budget check.
pub static TRAIN_LEAK_UNUSED: Counter = Counter::new("trainer.leak.unused");
/// `AfterLoss` leaks observed by the trainer's per-epoch leak-budget check.
pub static TRAIN_LEAK_AFTER_LOSS: Counter = Counter::new("trainer.leak.after_loss");
/// Divergence detections (non-finite loss/grads or loss spike) by the
/// training sentinel, whether or not recovery was attempted.
pub static TRAIN_RECOVER_DETECTED: Counter = Counter::new("trainer.recover.detected");
/// Rollbacks to the last-good checkpoint performed by the sentinel.
pub static TRAIN_RECOVER_ROLLBACKS: Counter = Counter::new("trainer.recover.rollbacks");
/// Checkpoints captured (in memory or on disk) by the recovery manager.
pub static TRAIN_RECOVER_CHECKPOINTS: Counter = Counter::new("trainer.recover.checkpoints");
/// Divergences the sentinel could *not* recover from (retry budget
/// exhausted, recovery disabled, or no checkpoint yet).
pub static TRAIN_RECOVER_GIVEUPS: Counter = Counter::new("trainer.recover.giveups");
/// Checkpoint disk writes that failed and fell back to the in-memory copy.
pub static TRAIN_RECOVER_CKPT_IO_ERRORS: Counter = Counter::new("trainer.recover.ckpt_io_errors");
/// Parallel ops degraded to the serial path after a worker panic.
pub static KERNEL_PANIC_DEGRADED: Counter = Counter::new("kernel.panic_degraded");
/// Bytes served from recycled scratch buffers instead of fresh allocations
/// (see `ses_tensor::scratch`): each lease satisfied from the pool adds the
/// buffer's byte size here, so `alloc.saved_bytes / (alloc.saved_bytes +
/// alloc.bytes)` is the arena hit rate.
pub static ALLOC_SAVED_BYTES: Counter = Counter::new("alloc.saved_bytes");
/// Divergences detected (and recovered) in the mask/explain phase of `fit`,
/// as opposed to the EPL phase covered by `trainer.recover.*`.
pub static TRAIN_RECOVER_MASK_PHASE: Counter = Counter::new("trainer.recover.mask_phase");

/// Rotated checkpoint files skipped by `latest_checkpoint` because they
/// failed validation (truncated, bit-flipped, bad magic); resume fell back
/// to the next-newest `keep_last_n` copy.
pub static TRAIN_RECOVER_CORRUPT_CKPT_SKIPPED: Counter =
    Counter::new("trainer.recover.corrupt_ckpt_skipped");

// -- ses-serve: explanation-serving runtime instruments ---------------------

/// Requests admitted into the serving queue (accepted, not yet completed).
pub static SERVE_ADMITTED: Counter = Counter::new("serve.admitted");
/// Requests rejected at admission because the bounded queue was full.
pub static SERVE_SHED: Counter = Counter::new("serve.shed");
/// Requests that completed with a response (any ladder tier).
pub static SERVE_COMPLETED: Counter = Counter::new("serve.completed");
/// Requests that returned a hard error (deadline with recovery off, etc.).
pub static SERVE_FAILED: Counter = Counter::new("serve.failed");
/// Request attempts whose panic was caught at the isolation boundary.
pub static SERVE_PANIC_ISOLATED: Counter = Counter::new("serve.panic_isolated");
/// Retries of a request attempt after a transient fault (jittered backoff).
pub static SERVE_RETRIES: Counter = Counter::new("serve.retry");
/// Deadline budget exhausted at a stage boundary.
pub static SERVE_DEADLINE_BREACH: Counter = Counter::new("serve.deadline.breach");
/// Circuit-breaker transitions into the open state.
pub static SERVE_BREAKER_OPEN: Counter = Counter::new("serve.breaker.open");
/// Explanation-cache hits (content-hash key matched a live entry).
pub static SERVE_CACHE_HIT: Counter = Counter::new("serve.cache.hit");
/// Explanation-cache misses.
pub static SERVE_CACHE_MISS: Counter = Counter::new("serve.cache.miss");
/// Explanation-cache entries evicted to respect the entry/byte caps.
pub static SERVE_CACHE_EVICT: Counter = Counter::new("serve.cache.evict");
/// Cache hits discarded because the entry failed its integrity checksum.
pub static SERVE_CACHE_POISONED: Counter = Counter::new("serve.cache.poisoned");
/// Requests answered from the explanation cache while degraded (ladder
/// step 2; a healthy-path cache hit counts only `serve.cache.hit`).
pub static SERVE_DEGRADED_CACHE: Counter = Counter::new("serve.degraded.cache");
/// Requests answered by the gradient-saliency fallback (ladder step 3).
pub static SERVE_DEGRADED_SALIENCY: Counter = Counter::new("serve.degraded.saliency");
/// Requests answered predict-only, no explanation (ladder step 4).
pub static SERVE_DEGRADED_PREDICT_ONLY: Counter = Counter::new("serve.degraded.predict_only");

/// Request-shaped traces opened via `ses_obs::trace::request`.
pub static TRACE_REQUESTS: Counter = Counter::new("trace.requests");
/// Child span events recorded into trace trees.
pub static TRACE_SPANS: Counter = Counter::new("trace.spans");
/// Trace events discarded because the bounded event buffer was full.
pub static TRACE_DROPPED: Counter = Counter::new("trace.dropped");

/// SLO budget breaches per explain stage / phase (see `ses_obs::slo`).
pub static SLO_BREACH_EXTRACT: Counter = Counter::new("slo.breach.extract");
/// See [`SLO_BREACH_EXTRACT`].
pub static SLO_BREACH_ENCODE: Counter = Counter::new("slo.breach.encode");
/// See [`SLO_BREACH_EXTRACT`].
pub static SLO_BREACH_MASK: Counter = Counter::new("slo.breach.mask");
/// See [`SLO_BREACH_EXTRACT`].
pub static SLO_BREACH_RANK: Counter = Counter::new("slo.breach.rank");
/// See [`SLO_BREACH_EXTRACT`].
pub static SLO_BREACH_EPOCH: Counter = Counter::new("slo.breach.epoch");
/// See [`SLO_BREACH_EXTRACT`].
pub static SLO_BREACH_REQUEST: Counter = Counter::new("slo.breach.request");
/// Breaches against budgets whose stage has no dedicated counter.
pub static SLO_BREACH_OTHER: Counter = Counter::new("slo.breach.other");

// -- SLO-grade latency distributions (log-linear; see `ses_obs::hist`) ------

/// Extract stage (ego-subgraph assembly) latency per explain request.
pub static EXPLAIN_STAGE_EXTRACT_NS: LogHistogram = LogHistogram::new("explain.stage.extract_ns");
/// Encode stage (relevance gathering) latency per explain request.
pub static EXPLAIN_STAGE_ENCODE_NS: LogHistogram = LogHistogram::new("explain.stage.encode_ns");
/// Mask stage (edge scoring) latency per explain request.
pub static EXPLAIN_STAGE_MASK_NS: LogHistogram = LogHistogram::new("explain.stage.mask_ns");
/// Rank stage (edge ordering) latency per explain request.
pub static EXPLAIN_STAGE_RANK_NS: LogHistogram = LogHistogram::new("explain.stage.rank_ns");
/// End-to-end per-node explain request latency.
pub static EXPLAIN_REQUEST_NS: LogHistogram = LogHistogram::new("explain.request_ns");
/// Training epoch wall-clock latency (backbone and explain phases).
pub static TRAIN_EPOCH_NS: LogHistogram = LogHistogram::new("trainer.epoch_ns");
/// End-to-end serving-request latency (admission to response, all tiers).
pub static SERVE_REQUEST_NS: LogHistogram = LogHistogram::new("serve.request_ns");

static ALL_COUNTERS: [&Counter; 53] = [
    &TAPE_NODES,
    &TAPE_BACKWARDS,
    &SPMM_CALLS,
    &SPMM_NNZ,
    &EDGE_SOFTMAX_CALLS,
    &MATMUL_CALLS,
    &MATMUL_FLOPS,
    &ALLOC_MATRICES,
    &ALLOC_BYTES,
    &SAN_NONFINITE,
    &SAN_LEAK_AFTER_LOSS,
    &SAN_LEAK_UNUSED,
    &SAN_LEAK_PRUNED,
    &EXPLAIN_NODES,
    &VERIFY_CHECKS,
    &VERIFY_ERRORS,
    &VERIFY_WARNINGS,
    &TRAIN_LEAK_UNUSED,
    &TRAIN_LEAK_AFTER_LOSS,
    &TRAIN_RECOVER_DETECTED,
    &TRAIN_RECOVER_ROLLBACKS,
    &TRAIN_RECOVER_CHECKPOINTS,
    &TRAIN_RECOVER_GIVEUPS,
    &TRAIN_RECOVER_CKPT_IO_ERRORS,
    &KERNEL_PANIC_DEGRADED,
    &ALLOC_SAVED_BYTES,
    &TRAIN_RECOVER_MASK_PHASE,
    &TRACE_REQUESTS,
    &TRACE_SPANS,
    &TRACE_DROPPED,
    &SLO_BREACH_EXTRACT,
    &SLO_BREACH_ENCODE,
    &SLO_BREACH_MASK,
    &SLO_BREACH_RANK,
    &SLO_BREACH_EPOCH,
    &SLO_BREACH_REQUEST,
    &SLO_BREACH_OTHER,
    &TRAIN_RECOVER_CORRUPT_CKPT_SKIPPED,
    &SERVE_ADMITTED,
    &SERVE_SHED,
    &SERVE_COMPLETED,
    &SERVE_FAILED,
    &SERVE_PANIC_ISOLATED,
    &SERVE_RETRIES,
    &SERVE_DEADLINE_BREACH,
    &SERVE_BREAKER_OPEN,
    &SERVE_CACHE_HIT,
    &SERVE_CACHE_MISS,
    &SERVE_CACHE_EVICT,
    &SERVE_CACHE_POISONED,
    &SERVE_DEGRADED_CACHE,
    &SERVE_DEGRADED_SALIENCY,
    &SERVE_DEGRADED_PREDICT_ONLY,
];
static ALL_GAUGES: [&Gauge; 2] = [&TAPE_PEAK_NODES, &SCRATCH_HIGHWATER];
static ALL_HISTOGRAMS: [&Histogram; 1] = [&EXPLAIN_NODE_NS];
static ALL_LOG_HISTOGRAMS: [&LogHistogram; 7] = [
    &EXPLAIN_STAGE_EXTRACT_NS,
    &EXPLAIN_STAGE_ENCODE_NS,
    &EXPLAIN_STAGE_MASK_NS,
    &EXPLAIN_STAGE_RANK_NS,
    &EXPLAIN_REQUEST_NS,
    &TRAIN_EPOCH_NS,
    &SERVE_REQUEST_NS,
];

/// All well-known counters, for the summary table and end-of-run records.
pub fn counters() -> &'static [&'static Counter] {
    &ALL_COUNTERS
}

/// All well-known gauges.
pub fn gauges() -> &'static [&'static Gauge] {
    &ALL_GAUGES
}

/// All well-known histograms.
pub fn histograms() -> &'static [&'static Histogram] {
    &ALL_HISTOGRAMS
}

/// All well-known log-linear histograms (SLO-grade latency instruments).
pub fn log_histograms() -> &'static [&'static LogHistogram] {
    &ALL_LOG_HISTOGRAMS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_power_of_two_log() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // floors invert the index mapping
        for b in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_floor(b)), b);
            assert_eq!(bucket_index(bucket_floor(b + 1) - 1), b);
        }
    }

    #[test]
    fn histogram_records_and_summarises() {
        crate::set_enabled_override(Some(true));
        static H: Histogram = Histogram::new("test.hist");
        H.reset();
        for v in [0u64, 1, 3, 8, 8, 1000] {
            H.record(v);
        }
        assert_eq!(H.count(), 6);
        assert_eq!(H.sum(), 1020);
        assert_eq!(H.max(), 1000);
        assert_eq!(H.bucket_count(0), 1); // the zero
        assert_eq!(H.bucket_count(1), 1); // 1
        assert_eq!(H.bucket_count(2), 1); // 3
        assert_eq!(H.bucket_count(4), 2); // 8, 8
        assert_eq!(H.bucket_count(10), 1); // 1000
        assert!((H.mean() - 170.0).abs() < 1e-9);
        crate::set_enabled_override(None);
    }

    #[test]
    fn disabled_instruments_stay_zero() {
        crate::set_enabled_override(Some(false));
        static C: Counter = Counter::new("test.counter");
        static G: Gauge = Gauge::new("test.gauge");
        static H: Histogram = Histogram::new("test.hist2");
        C.reset();
        C.add(5);
        G.set(9);
        H.record(42);
        assert_eq!(C.get(), 0);
        assert_eq!(G.get(), 0);
        assert_eq!(H.count(), 0);
        crate::set_enabled_override(None);
    }

    #[test]
    fn counter_accumulates_across_threads() {
        crate::set_enabled_override(Some(true));
        static C: Counter = Counter::new("test.mt_counter");
        C.reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.incr();
                    }
                });
            }
        });
        assert_eq!(C.get(), 4000);
        crate::set_enabled_override(None);
    }
}
