//! The sanctioned wall-clock primitive for library code.
//!
//! The `no-raw-instant-in-lib` lint rule bans ad-hoc `std::time::Instant`
//! in library runtime paths: timing that matters should flow through
//! `ses-obs` so it is visible to spans, histograms and SLO policies. This
//! `Stopwatch` is the escape hatch for durations that feed telemetry
//! *values* (epoch records, latency histograms) rather than span trees —
//! one audited wrapper instead of scattered `Instant::now()` pairs.

use std::time::{Duration, Instant};

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed milliseconds as a float (reporting convenience).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts the timer and returns the elapsed time up to the restart.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now.duration_since(self.start);
        self.start = now;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_and_laps() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed_ns() >= 1_000_000);
        assert!(sw.elapsed_ms() >= 1.0);
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(1));
        // After a lap the clock restarts near zero.
        assert!(sw.elapsed() < lap + Duration::from_secs(1));
    }
}
