//! `ses-obs` — the observability substrate of the SES workspace: a span-based
//! tracer, a lock-free metrics registry, and a JSONL telemetry sink.
//!
//! Zero external dependencies (consistent with the offline vendored-stub
//! policy); everything is built on `std` atomics, [`std::time::Instant`] and
//! plain file IO.
//!
//! # Components
//!
//! * [`spans`] — RAII [`span!`] guards with nesting and wall-clock timing.
//!   Aggregation is a fixed table of atomics keyed by the span's static
//!   name, so guards dropped concurrently from the `par` fork/join workers
//!   never take a lock.
//! * [`metrics`] — typed [`Counter`]s, [`Gauge`]s and [`Histogram`]s behind
//!   relaxed atomics, plus the well-known instruments the tensor/gnn/core
//!   crates increment (kernel invocations, nnz processed, allocation churn,
//!   tape nodes, sanitizer events).
//! * [`sink`] + [`Record`] — JSONL event records (per-epoch training
//!   telemetry, explanation latency, timing rows) written to the file named
//!   by `SES_OBS_FILE`.
//! * [`log`] — the routing layer for human-oriented lines. Library crates
//!   must not call `println!`/`eprintln!` directly (enforced by the
//!   `no-println-in-lib` lint rule); they call [`info!`]/[`outln!`], which
//!   write to stderr/stdout and mirror to the sink when it is active.
//! * [`summary`] — the human-readable end-of-run table over everything the
//!   registry and tracer collected.
//! * [`json`] — a minimal JSON parser used by the schema validator
//!   (`obs-validate`) and the telemetry integration tests.
//! * [`trace`] — request-scoped trace contexts: `TraceId`/`SpanId`/parent
//!   propagation through `span!` guards and across scoped worker threads,
//!   reconstructing one tree per request.
//! * [`hist`] — log-linear (HDR-style) latency histograms with
//!   p50/p90/p99/p99.9 estimation at a documented relative-error bound.
//! * [`slo`] — per-stage latency budgets (`SES_SLO`) with `slo.breach.*`
//!   accounting.
//! * [`export`] — Prometheus text-format snapshots (`SES_OBS_PROM_FILE`)
//!   and Chrome trace-event JSON (`SES_OBS_CHROME`).
//! * [`analyze`] — JSONL telemetry analysis (top spans, trends, run
//!   diffing, markdown regeneration) behind the `ses-obs` CLI.
//! * [`time`] — the [`Stopwatch`] library code must use instead of raw
//!   `std::time::Instant` (enforced by the `no-raw-instant-in-lib` lint).
//!
//! # Activation
//!
//! * `SES_OBS=1` (any value other than `0`/`off`) — telemetry on;
//! * `SES_OBS=0` / `SES_OBS=off` — telemetry off;
//! * unset — on when `SES_OBS_FILE` is set, off otherwise.
//!
//! The decision is cached after first use; one relaxed atomic load guards
//! every instrumentation site, so the disabled path costs a load and a
//! predictable branch (verified to stay under 2% of an spmm call by the
//! kernel bench gate — see `docs/OBSERVABILITY.md`).

pub mod analyze;
pub mod export;
pub mod hist;
pub mod json;
pub mod log;
pub mod metrics;
pub mod record;
pub mod sink;
pub mod slo;
pub mod spans;
pub mod summary;
pub(crate) mod sync;
pub mod time;
pub mod trace;

pub use hist::{HistSnapshot, LogHistogram};
pub use metrics::{Counter, Gauge, Histogram};
pub use record::Record;
pub use slo::SloPolicy;
pub use spans::{SpanGuard, SpanStat};
pub use summary::{print_summary, summary_string};
pub use time::Stopwatch;
pub use trace::{SpanId, TraceContext, TraceId};

use std::sync::atomic::Ordering;

use crate::sync::AtomicU8;

/// Tri-state atomic: 0 = undecided, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);
/// Programmatic override (tests, the disabled-path probe): 0 none, 1 off,
/// 2 on. Takes priority over the cached environment decision.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// True when telemetry collection is active for this process.
///
/// Hot-path cost when disabled: one relaxed atomic load and a branch.
#[inline]
pub fn enabled() -> bool {
    // ordering: independent on/off flag; no data guarded
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    // ordering: independent on/off flag; no data guarded
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

/// Resolves the environment decision once and caches it.
fn init_from_env() -> bool {
    let on = match std::env::var("SES_OBS") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("off")),
        Err(_) => std::env::var_os("SES_OBS_FILE").is_some(),
    };
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed); // ordering: independent on/off flag; no data guarded
    on
}

/// Forces telemetry on/off (`Some`) or restores the environment decision
/// (`None`). For tests and the disabled-path probe; takes effect for all
/// subsequent instrumentation in this process.
pub fn set_enabled_override(state: Option<bool>) {
    let v = match state {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed); // ordering: independent on/off flag; no data guarded
}

/// Measures the per-iteration wall-clock cost of the *disabled*
/// instrumentation preamble an spmm call pays (one span guard plus two
/// counter bumps), in nanoseconds. Used by the kernel bench gate to assert
/// the disabled path stays under 2% of an spmm invocation.
pub fn disabled_path_cost_ns(iters: u64) -> f64 {
    let iters = iters.max(1);
    set_enabled_override(Some(false));
    let start = std::time::Instant::now();
    for i in 0..iters {
        let g = spans::span(std::hint::black_box("obs.probe"));
        metrics::SPMM_CALLS.add(1);
        metrics::SPMM_NNZ.add(std::hint::black_box(i & 1));
        drop(g);
    }
    let ns = start.elapsed().as_nanos();
    set_enabled_override(None);
    // lint:allow(no-f64-in-kernels): not a tensor kernel — timing arithmetic
    ns as f64 / iters as f64
}

/// Measures the per-iteration cost of the same instrumentation preamble
/// with telemetry *enabled* (span-table aggregation plus counter bumps; no
/// trace active, matching a kernel call inside a training epoch), in
/// nanoseconds. Used by the bench gate asserting enabled-tracing overhead
/// stays under 2% of a serial epoch.
pub fn enabled_path_cost_ns(iters: u64) -> f64 {
    let iters = iters.max(1);
    set_enabled_override(Some(true));
    let start = std::time::Instant::now();
    for i in 0..iters {
        let g = spans::span(std::hint::black_box("obs.probe"));
        metrics::SPMM_CALLS.add(1);
        metrics::SPMM_NNZ.add(std::hint::black_box(i & 1));
        drop(g);
    }
    let ns = start.elapsed().as_nanos();
    set_enabled_override(None);
    // lint:allow(no-f64-in-kernels): not a tensor kernel — timing arithmetic
    ns as f64 / iters as f64
}

/// Creates a named RAII span guard: `let _g = ses_obs::span!("phase");`.
/// Timing is recorded when the guard drops; a disabled tracer returns an
/// inert guard.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::spans::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_controls_enabled() {
        set_enabled_override(Some(true));
        assert!(enabled());
        set_enabled_override(Some(false));
        assert!(!enabled());
        set_enabled_override(None);
        let _ = enabled(); // env decision; just must not panic
        set_enabled_override(Some(true)); // leave on for sibling tests
    }

    #[test]
    fn disabled_probe_is_cheap_and_positive() {
        let ns = disabled_path_cost_ns(10_000);
        assert!(ns >= 0.0);
        // A relaxed load + branch costs nanoseconds, not microseconds.
        assert!(ns < 10_000.0, "disabled path suspiciously slow: {ns} ns");
    }
}
