//! Human-readable end-of-run summary over everything the tracer and the
//! metrics registry collected.

use std::fmt::Write as _;

use crate::metrics;
use crate::spans;

// lint:allow(no-f64-in-kernels): reporting arithmetic, not tensor kernels

fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn fmt_count(n: u64) -> String {
    let n_f = n as f64;
    if n_f >= 1e9 {
        format!("{:.2}G", n_f / 1e9)
    } else if n_f >= 1e6 {
        format!("{:.2}M", n_f / 1e6)
    } else if n_f >= 1e3 {
        format!("{:.2}k", n_f / 1e3)
    } else {
        format!("{n}")
    }
}

/// Renders the summary table: span aggregates sorted by total time, then
/// the nonzero counters/gauges, then histogram digests. Empty string when
/// nothing was recorded.
pub fn summary_string() -> String {
    let mut out = String::new();

    let mut span_rows = spans::snapshot();
    span_rows.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
    if !span_rows.is_empty() {
        let _ = writeln!(
            out,
            "── spans ──────────────────────────────────────────────"
        );
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "total", "mean", "max"
        );
        for s in &span_rows {
            let mean = s.total_ns / s.count.max(1);
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>10} {:>10} {:>10}",
                s.name,
                fmt_count(s.count),
                fmt_ns(s.total_ns),
                fmt_ns(mean),
                fmt_ns(s.max_ns)
            );
        }
    }

    if spans::tree_enabled() {
        let lines = spans::tree_lines();
        if !lines.is_empty() {
            let _ = writeln!(
                out,
                "── span tree (collapsed stacks, self ns) ──────────────"
            );
            for line in lines {
                let _ = writeln!(out, "{line}");
            }
        }
    }

    let counters: Vec<_> = metrics::counters().iter().filter(|c| c.get() > 0).collect();
    let gauges: Vec<_> = metrics::gauges().iter().filter(|g| g.get() != 0).collect();
    if !counters.is_empty() || !gauges.is_empty() {
        let _ = writeln!(
            out,
            "── counters ───────────────────────────────────────────"
        );
        for c in counters {
            let _ = writeln!(out, "{:<28} {:>12}", c.name(), fmt_count(c.get()));
        }
        for g in gauges {
            let _ = writeln!(out, "{:<28} {:>12}", g.name(), g.get());
        }
    }

    let hists: Vec<_> = metrics::histograms()
        .iter()
        .filter(|h| h.count() > 0)
        .collect();
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "── histograms ─────────────────────────────────────────"
        );
        for h in hists {
            let _ = writeln!(
                out,
                "{:<28} n={} mean={} max={}",
                h.name(),
                fmt_count(h.count()),
                fmt_ns(h.mean() as u64),
                fmt_ns(h.max())
            );
        }
    }

    let log_hists: Vec<_> = metrics::log_histograms()
        .iter()
        .filter(|h| h.count() > 0)
        .collect();
    if !log_hists.is_empty() {
        let _ = writeln!(
            out,
            "── latency quantiles ──────────────────────────────────"
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p90", "p99", "p99.9"
        );
        for h in log_hists {
            let snap = h.snapshot();
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10}",
                h.name(),
                fmt_count(snap.count()),
                fmt_ns(snap.quantile(0.5)),
                fmt_ns(snap.quantile(0.9)),
                fmt_ns(snap.quantile(0.99)),
                fmt_ns(snap.quantile(0.999))
            );
        }
    }

    out
}

/// Prints the summary table to stderr and flushes the environment-named
/// exporters (`SES_OBS_PROM_FILE`, `SES_OBS_CHROME`). No-op when nothing
/// was recorded or telemetry is disabled.
pub fn print_summary() {
    if !crate::enabled() {
        return;
    }
    let s = summary_string();
    if !s.is_empty() {
        crate::log::info(format_args!("ses-obs run summary\n{s}"));
    }
    crate::export::flush_env_exports();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_includes_recorded_activity() {
        crate::set_enabled_override(Some(true));
        {
            let _g = crate::spans::span("test.summary_phase");
        }
        metrics::TAPE_NODES.add(3);
        let s = summary_string();
        assert!(s.contains("test.summary_phase"));
        assert!(s.contains("tape.nodes"));
        crate::set_enabled_override(None);
    }

    #[test]
    fn fmt_helpers_pick_sane_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(2_500), "2.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_500), "1.50k");
        assert_eq!(fmt_count(2_000_000), "2.00M");
    }
}
