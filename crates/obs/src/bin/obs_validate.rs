//! `obs-validate` — schema validator for `ses-obs` telemetry artifacts.
//!
//! Usage:
//!
//! ```text
//! obs-validate <file.jsonl> [--require <event>]   # JSONL telemetry
//! obs-validate --prom <file.prom>                 # Prometheus text format
//! obs-validate --chrome <file.json>               # Chrome trace events
//! ```
//!
//! JSONL checks, exiting non-zero with a message on the first violation:
//!
//! * every non-empty line parses as a JSON object with a string `event`
//!   field and a numeric `t_ms`;
//! * `epoch` records carry a string `phase`, a numeric `epoch ≥ 0` that is
//!   strictly monotone within each phase, a finite `loss`, and a finite
//!   `epoch_ms > 0`;
//! * `bench_row` records carry a string `sheet` and only finite numbers;
//! * at least one record of the required event kind exists (`epoch` by
//!   default — an instrumented run that logged nothing is itself a
//!   failure). The ses-ir compile gate passes `--require bench_row`.
//!
//! `--prom` checks text-exposition shape: every line is a comment or a
//! `name[{labels}] value` sample, names carry the `ses_` prefix, values are
//! finite, and at least one typed metric exists. `--chrome` checks the
//! trace-event document: a `traceEvents` array of complete (`ph:"X"`)
//! events with numeric timestamps, whose `args.trace`/`span`/`parent` ids
//! reassemble into well-formed trees (one root per trace, no orphans).

use std::collections::BTreeMap;
use std::process::ExitCode;

use ses_obs::json::Json;

fn validate(content: &str, require: &str) -> Result<usize, String> {
    let mut required_seen = 0usize;
    let mut last_epoch: BTreeMap<String, f64> = BTreeMap::new();
    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {lineno}: invalid JSON: {e}"))?;
        let obj = v
            .as_object()
            .ok_or(format!("line {lineno}: not a JSON object"))?;
        let event = obj
            .get("event")
            .and_then(Json::as_str)
            .ok_or(format!("line {lineno}: missing string `event`"))?;
        obj.get("t_ms")
            .and_then(Json::as_f64)
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or(format!("line {lineno}: missing numeric `t_ms`"))?;
        if event == require {
            required_seen += 1;
        }

        if event == "bench_row" {
            obj.get("sheet")
                .and_then(Json::as_str)
                .ok_or(format!("line {lineno}: bench_row record missing `sheet`"))?;
            for (key, val) in obj {
                if let Some(n) = val.as_f64() {
                    if !n.is_finite() {
                        return Err(format!("line {lineno}: non-finite `{key}` in bench_row"));
                    }
                }
            }
        }

        if event == "epoch" {
            let phase = obj
                .get("phase")
                .and_then(Json::as_str)
                .ok_or(format!("line {lineno}: epoch record missing `phase`"))?;
            let epoch = obj
                .get("epoch")
                .and_then(Json::as_f64)
                .filter(|e| e.is_finite() && *e >= 0.0)
                .ok_or(format!("line {lineno}: epoch record missing `epoch`"))?;
            if let Some(prev) = last_epoch.get(phase) {
                if epoch <= *prev {
                    return Err(format!(
                        "line {lineno}: epoch not monotone in phase `{phase}`: {prev} -> {epoch}"
                    ));
                }
            }
            last_epoch.insert(phase.to_string(), epoch);
            let loss = obj
                .get("loss")
                .and_then(Json::as_f64)
                .ok_or(format!("line {lineno}: epoch record missing `loss`"))?;
            if !loss.is_finite() {
                return Err(format!("line {lineno}: non-finite loss"));
            }
            let epoch_ms = obj
                .get("epoch_ms")
                .and_then(Json::as_f64)
                .ok_or(format!("line {lineno}: epoch record missing `epoch_ms`"))?;
            if !(epoch_ms.is_finite() && epoch_ms >= 0.0) {
                return Err(format!("line {lineno}: bad epoch_ms {epoch_ms}"));
            }
        }
    }
    if required_seen == 0 {
        return Err(format!("no `{require}` records found"));
    }
    Ok(required_seen)
}

/// Validates Prometheus text-exposition content; returns the number of
/// sample lines.
fn validate_prom(content: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut typed = 0usize;
    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            if !name.starts_with("ses_") {
                return Err(format!("line {lineno}: TYPE for non-ses metric `{name}`"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary") {
                return Err(format!("line {lineno}: unknown metric type `{kind}`"));
            }
            typed += 1;
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are fine
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: not a `name value` sample"))?;
        if !name.starts_with("ses_") {
            return Err(format!("line {lineno}: sample for non-ses metric `{name}`"));
        }
        let v: f64 = value
            .parse()
            .map_err(|e| format!("line {lineno}: bad sample value `{value}`: {e}"))?;
        if !v.is_finite() {
            return Err(format!("line {lineno}: non-finite sample value"));
        }
        samples += 1;
    }
    if typed == 0 || samples == 0 {
        return Err("no typed ses_ metrics found".to_string());
    }
    Ok(samples)
}

/// Validates a Chrome trace-event document; returns the number of events.
fn validate_chrome(content: &str) -> Result<usize, String> {
    let v = Json::parse(content).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = v.as_object().ok_or("root is not an object")?;
    let events = match obj.get("traceEvents") {
        Some(Json::Arr(a)) => a,
        _ => return Err("missing `traceEvents` array".to_string()),
    };
    // (trace -> (span ids, parent ids)) for tree reconstruction.
    let mut traces: BTreeMap<i64, (Vec<i64>, Vec<i64>)> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ev = ev.as_object().ok_or(format!("event {i}: not an object"))?;
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i}: missing string `name`"))?;
        match ev.get("ph").and_then(Json::as_str) {
            Some("X") => {}
            other => return Err(format!("event {i}: expected ph \"X\", got {other:?}")),
        }
        for key in ["ts", "dur", "pid", "tid"] {
            ev.get(key)
                .and_then(Json::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0)
                .ok_or(format!("event {i}: missing numeric `{key}`"))?;
        }
        let args = ev
            .get("args")
            .and_then(Json::as_object)
            .ok_or(format!("event {i}: missing `args`"))?;
        let id = |k: &str| -> Result<i64, String> {
            args.get(k)
                .and_then(Json::as_f64)
                .map(|n| n as i64)
                .ok_or(format!("event {i}: missing numeric args.{k}"))
        };
        let (trace, span, parent) = (id("trace")?, id("span")?, id("parent")?);
        let entry = traces.entry(trace).or_default();
        entry.0.push(span);
        entry.1.push(parent);
    }
    for (trace, (spans, parents)) in &traces {
        let roots = parents.iter().filter(|p| **p == 0).count();
        if roots != 1 {
            return Err(format!("trace {trace}: {roots} roots (expected 1)"));
        }
        for p in parents {
            if *p != 0 && !spans.contains(p) {
                return Err(format!("trace {trace}: orphan span with parent {p}"));
            }
        }
    }
    Ok(events.len())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    enum Mode {
        Jsonl(String),
        Prom,
        Chrome,
    }
    let (path, mode) = match args.as_slice() {
        [path] => (path.clone(), Mode::Jsonl("epoch".to_string())),
        [path, flag, event] if flag == "--require" => (path.clone(), Mode::Jsonl(event.clone())),
        [flag, path] if flag == "--prom" => (path.clone(), Mode::Prom),
        [flag, path] if flag == "--chrome" => (path.clone(), Mode::Chrome),
        _ => {
            eprintln!(
                "usage: obs-validate <file.jsonl> [--require <event>] \
                 | obs-validate --prom <file> | obs-validate --chrome <file>"
            );
            return ExitCode::FAILURE;
        }
    };
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("obs-validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &mode {
        Mode::Jsonl(require) => {
            validate(&content, require).map(|n| format!("{n} `{require}` records"))
        }
        Mode::Prom => validate_prom(&content).map(|n| format!("{n} Prometheus samples")),
        Mode::Chrome => validate_chrome(&content).map(|n| format!("{n} trace events")),
    };
    match outcome {
        Ok(what) => {
            println!("obs-validate: OK ({path}: {what})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs-validate: FAIL ({path}): {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_telemetry() {
        let good = concat!(
            "{\"event\":\"log\",\"t_ms\":1,\"msg\":\"hi\"}\n",
            "{\"event\":\"epoch\",\"t_ms\":2,\"phase\":\"explain\",\"epoch\":0,\"loss\":1.5,\"epoch_ms\":3.2}\n",
            "{\"event\":\"epoch\",\"t_ms\":5,\"phase\":\"explain\",\"epoch\":1,\"loss\":1.2,\"epoch_ms\":3.0}\n",
            "{\"event\":\"epoch\",\"t_ms\":8,\"phase\":\"epl\",\"epoch\":0,\"loss\":0.9,\"epoch_ms\":2.8}\n",
        );
        assert_eq!(validate(good, "epoch"), Ok(3));
    }

    #[test]
    fn rejects_violations() {
        assert!(validate("not json\n", "epoch").is_err());
        assert!(validate("{\"event\":\"log\",\"t_ms\":1}\n", "epoch").is_err()); // no epochs
        let non_monotone = concat!(
            "{\"event\":\"epoch\",\"t_ms\":1,\"phase\":\"p\",\"epoch\":1,\"loss\":1.0,\"epoch_ms\":1.0}\n",
            "{\"event\":\"epoch\",\"t_ms\":2,\"phase\":\"p\",\"epoch\":1,\"loss\":1.0,\"epoch_ms\":1.0}\n",
        );
        assert!(validate(non_monotone, "epoch").is_err());
        let nan_loss =
            "{\"event\":\"epoch\",\"t_ms\":1,\"phase\":\"p\",\"epoch\":0,\"loss\":null,\"epoch_ms\":1.0}\n";
        assert!(validate(nan_loss, "epoch").is_err());
    }

    #[test]
    fn required_event_is_configurable() {
        let bench = concat!(
            "{\"event\":\"bench_row\",\"t_ms\":1,\"sheet\":\"ir_compile\",\"nodes_before\":79}\n",
            "{\"event\":\"bench_row\",\"t_ms\":2,\"sheet\":\"ir_compile\",\"nodes_before\":74}\n",
        );
        assert_eq!(validate(bench, "bench_row"), Ok(2));
        assert!(validate(bench, "epoch").is_err(), "no epoch records here");

        let no_sheet = "{\"event\":\"bench_row\",\"t_ms\":1,\"x\":2}\n";
        assert!(validate(no_sheet, "bench_row").is_err());
    }

    #[test]
    fn prom_mode_accepts_real_exports_and_rejects_garbage() {
        ses_obs::set_enabled_override(Some(true));
        ses_obs::metrics::SPMM_CALLS.add(1);
        ses_obs::metrics::EXPLAIN_REQUEST_NS.record(5_000);
        let text = ses_obs::export::prometheus_string();
        ses_obs::set_enabled_override(None);
        assert!(super::validate_prom(&text).expect("real export must validate") > 0);

        assert!(super::validate_prom("").is_err());
        assert!(super::validate_prom("# TYPE ses_x counter\nses_x notanumber\n").is_err());
        assert!(super::validate_prom("# TYPE bad_prefix counter\nbad_prefix 1\n").is_err());
    }

    #[test]
    fn chrome_mode_checks_tree_shape() {
        let ok = "{\"traceEvents\":[\
            {\"name\":\"r\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":9,\
             \"args\":{\"trace\":1,\"span\":1,\"parent\":0}},\
            {\"name\":\"c\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":1,\"dur\":2,\
             \"args\":{\"trace\":1,\"span\":2,\"parent\":1}}]}";
        assert_eq!(super::validate_chrome(ok), Ok(2));

        let orphan = ok.replace("\"parent\":1", "\"parent\":77");
        assert!(super::validate_chrome(&orphan).is_err());
        let two_roots = ok.replace("\"parent\":1", "\"parent\":0");
        assert!(super::validate_chrome(&two_roots).is_err());
        assert!(super::validate_chrome("{}").is_err());
        assert!(super::validate_chrome("[]").is_err());
    }
}
