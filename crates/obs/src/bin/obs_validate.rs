//! `obs-validate` — schema validator for `ses-obs` JSONL telemetry files.
//!
//! Usage: `obs-validate <file.jsonl> [--require <event>]`
//!
//! Checks, exiting non-zero with a message on the first violation:
//!
//! * every non-empty line parses as a JSON object with a string `event`
//!   field and a numeric `t_ms`;
//! * `epoch` records carry a string `phase`, a numeric `epoch ≥ 0` that is
//!   strictly monotone within each phase, a finite `loss`, and a finite
//!   `epoch_ms > 0`;
//! * `bench_row` records carry a string `sheet` and only finite numbers;
//! * at least one record of the required event kind exists (`epoch` by
//!   default — an instrumented run that logged nothing is itself a
//!   failure). The ses-ir compile gate passes `--require bench_row`.

use std::collections::BTreeMap;
use std::process::ExitCode;

use ses_obs::json::Json;

fn validate(content: &str, require: &str) -> Result<usize, String> {
    let mut required_seen = 0usize;
    let mut last_epoch: BTreeMap<String, f64> = BTreeMap::new();
    for (lineno, line) in content.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("line {lineno}: invalid JSON: {e}"))?;
        let obj = v
            .as_object()
            .ok_or(format!("line {lineno}: not a JSON object"))?;
        let event = obj
            .get("event")
            .and_then(Json::as_str)
            .ok_or(format!("line {lineno}: missing string `event`"))?;
        obj.get("t_ms")
            .and_then(Json::as_f64)
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or(format!("line {lineno}: missing numeric `t_ms`"))?;
        if event == require {
            required_seen += 1;
        }

        if event == "bench_row" {
            obj.get("sheet")
                .and_then(Json::as_str)
                .ok_or(format!("line {lineno}: bench_row record missing `sheet`"))?;
            for (key, val) in obj {
                if let Some(n) = val.as_f64() {
                    if !n.is_finite() {
                        return Err(format!("line {lineno}: non-finite `{key}` in bench_row"));
                    }
                }
            }
        }

        if event == "epoch" {
            let phase = obj
                .get("phase")
                .and_then(Json::as_str)
                .ok_or(format!("line {lineno}: epoch record missing `phase`"))?;
            let epoch = obj
                .get("epoch")
                .and_then(Json::as_f64)
                .filter(|e| e.is_finite() && *e >= 0.0)
                .ok_or(format!("line {lineno}: epoch record missing `epoch`"))?;
            if let Some(prev) = last_epoch.get(phase) {
                if epoch <= *prev {
                    return Err(format!(
                        "line {lineno}: epoch not monotone in phase `{phase}`: {prev} -> {epoch}"
                    ));
                }
            }
            last_epoch.insert(phase.to_string(), epoch);
            let loss = obj
                .get("loss")
                .and_then(Json::as_f64)
                .ok_or(format!("line {lineno}: epoch record missing `loss`"))?;
            if !loss.is_finite() {
                return Err(format!("line {lineno}: non-finite loss"));
            }
            let epoch_ms = obj
                .get("epoch_ms")
                .and_then(Json::as_f64)
                .ok_or(format!("line {lineno}: epoch record missing `epoch_ms`"))?;
            if !(epoch_ms.is_finite() && epoch_ms >= 0.0) {
                return Err(format!("line {lineno}: bad epoch_ms {epoch_ms}"));
            }
        }
    }
    if required_seen == 0 {
        return Err(format!("no `{require}` records found"));
    }
    Ok(required_seen)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, require) = match args.as_slice() {
        [path] => (path.clone(), "epoch".to_string()),
        [path, flag, event] if flag == "--require" => (path.clone(), event.clone()),
        _ => {
            eprintln!("usage: obs-validate <file.jsonl> [--require <event>]");
            return ExitCode::FAILURE;
        }
    };
    let content = match std::fs::read_to_string(&path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("obs-validate: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate(&content, &require) {
        Ok(seen) => {
            println!("obs-validate: OK ({path}: {seen} `{require}` records)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs-validate: FAIL ({path}): {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_telemetry() {
        let good = concat!(
            "{\"event\":\"log\",\"t_ms\":1,\"msg\":\"hi\"}\n",
            "{\"event\":\"epoch\",\"t_ms\":2,\"phase\":\"explain\",\"epoch\":0,\"loss\":1.5,\"epoch_ms\":3.2}\n",
            "{\"event\":\"epoch\",\"t_ms\":5,\"phase\":\"explain\",\"epoch\":1,\"loss\":1.2,\"epoch_ms\":3.0}\n",
            "{\"event\":\"epoch\",\"t_ms\":8,\"phase\":\"epl\",\"epoch\":0,\"loss\":0.9,\"epoch_ms\":2.8}\n",
        );
        assert_eq!(validate(good, "epoch"), Ok(3));
    }

    #[test]
    fn rejects_violations() {
        assert!(validate("not json\n", "epoch").is_err());
        assert!(validate("{\"event\":\"log\",\"t_ms\":1}\n", "epoch").is_err()); // no epochs
        let non_monotone = concat!(
            "{\"event\":\"epoch\",\"t_ms\":1,\"phase\":\"p\",\"epoch\":1,\"loss\":1.0,\"epoch_ms\":1.0}\n",
            "{\"event\":\"epoch\",\"t_ms\":2,\"phase\":\"p\",\"epoch\":1,\"loss\":1.0,\"epoch_ms\":1.0}\n",
        );
        assert!(validate(non_monotone, "epoch").is_err());
        let nan_loss =
            "{\"event\":\"epoch\",\"t_ms\":1,\"phase\":\"p\",\"epoch\":0,\"loss\":null,\"epoch_ms\":1.0}\n";
        assert!(validate(nan_loss, "epoch").is_err());
    }

    #[test]
    fn required_event_is_configurable() {
        let bench = concat!(
            "{\"event\":\"bench_row\",\"t_ms\":1,\"sheet\":\"ir_compile\",\"nodes_before\":79}\n",
            "{\"event\":\"bench_row\",\"t_ms\":2,\"sheet\":\"ir_compile\",\"nodes_before\":74}\n",
        );
        assert_eq!(validate(bench, "bench_row"), Ok(2));
        assert!(validate(bench, "epoch").is_err(), "no epoch records here");

        let no_sheet = "{\"event\":\"bench_row\",\"t_ms\":1,\"x\":2}\n";
        assert!(validate(no_sheet, "bench_row").is_err());
    }
}
