//! `ses-obs` — analysis CLI over JSONL telemetry files.
//!
//! ```text
//! ses-obs top <run.jsonl> [--n N]
//!     Top-N spans by total time across epoch kernel breakdowns.
//!
//! ses-obs trend <run.jsonl>
//!     Per-phase epoch trends: loss first→last, median/total epoch time.
//!
//! ses-obs diff <a.jsonl> <b.jsonl> [--threshold F] [--abs-floor-ms F]
//!              [--drill-slowdown F]
//!     Noise-aware comparison of two runs. A metric regresses only when it
//!     moves by more than the relative threshold AND the absolute floor.
//!     Exit code 1 on a regression verdict (CI-friendly);
//!     `--drill-slowdown F` multiplies run B's timings by F to prove the
//!     regression path fires.
//!
//! ses-obs regen <run.jsonl> <doc.md> [--check]
//!     Rewrites `<!-- BEGIN AUTOGEN:<sheet> -->` table sections in the
//!     markdown document from the run's bench_row records. With `--check`,
//!     writes nothing and exits 1 if the committed document is stale.
//! ```

use std::process::ExitCode;

use ses_obs::analyze::{self, DiffOptions, Run, Verdict};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ses-obs top <run.jsonl> [--n N]\n  ses-obs trend <run.jsonl>\n  \
         ses-obs diff <a.jsonl> <b.jsonl> [--threshold F] [--abs-floor-ms F] [--drill-slowdown F]\n  \
         ses-obs regen <run.jsonl> <doc.md> [--check]"
    );
    ExitCode::FAILURE
}

fn parse_flag(args: &[String], flag: &str) -> Result<Option<f64>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|e| format!("bad {flag} value: {e}")),
    }
}

fn cmd_top(path: &str, n: usize) -> Result<(), String> {
    let run = Run::load(path)?;
    let top = analyze::top_spans(&run, n);
    if top.is_empty() {
        return Err(format!("{path}: no epoch records with kernel breakdowns"));
    }
    println!("{:<28} {:>12} {:>8}", "span", "total_ms", "epochs");
    for s in top {
        println!("{:<28} {:>12.3} {:>8}", s.name, s.total_ms, s.records);
    }
    Ok(())
}

fn cmd_trend(path: &str) -> Result<(), String> {
    let run = Run::load(path)?;
    let trends = analyze::trends(&run);
    if trends.is_empty() {
        return Err(format!("{path}: no epoch records"));
    }
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>14} {:>12}",
        "phase", "epochs", "first_loss", "last_loss", "median_ep_ms", "total_ms"
    );
    for t in trends {
        let fmt_loss = |l: Option<f64>| l.map_or("—".to_string(), |l| format!("{l:.6}"));
        println!(
            "{:<12} {:>7} {:>12} {:>12} {:>14.3} {:>12.3}",
            t.phase,
            t.epochs,
            fmt_loss(t.first_loss),
            fmt_loss(t.last_loss),
            t.median_epoch_ms,
            t.total_ms
        );
    }
    Ok(())
}

fn cmd_diff(path_a: &str, path_b: &str, opts: DiffOptions) -> Result<Verdict, String> {
    let a = Run::load(path_a)?;
    let b = Run::load(path_b)?;
    let report = analyze::diff(&a, &b, opts);
    if report.metrics.is_empty() {
        return Err("no shared time metrics between the two runs".to_string());
    }
    println!(
        "{:<40} {:>12} {:>12} {:>9}  flag",
        "metric", "a_ms", "b_ms", "rel"
    );
    for m in &report.metrics {
        let flag = if m.regressed {
            "REGRESSED"
        } else if m.improved {
            "improved"
        } else {
            ""
        };
        println!(
            "{:<40} {:>12.3} {:>12.3} {:>8.1}%  {flag}",
            m.name,
            m.a,
            m.b,
            m.rel_change * 100.0
        );
    }
    match report.behavior_identical {
        Some(true) => println!("behaviour: final losses identical (like-for-like timings)"),
        Some(false) => println!("behaviour: final losses differ — runs did different work"),
        None => println!("behaviour: no loss data to compare"),
    }
    println!(
        "verdict: {} (threshold {:.0}% rel and {:.0}ms abs)",
        report.verdict.as_str(),
        opts.rel_threshold * 100.0,
        opts.abs_floor_ms
    );
    Ok(report.verdict)
}

fn cmd_regen(jsonl: &str, md_path: &str, check: bool) -> Result<bool, String> {
    let run = Run::load(jsonl)?;
    let md = std::fs::read_to_string(md_path).map_err(|e| format!("cannot read {md_path}: {e}"))?;
    let out = analyze::regen_markers(&md, &run)?;
    if out.sheets.is_empty() {
        return Err(format!("{md_path}: no AUTOGEN marker sections found"));
    }
    if check {
        if out.changed {
            eprintln!(
                "ses-obs regen --check: {md_path} is stale for sheets {:?} — \
                 run `ses-obs regen {jsonl} {md_path}` and commit",
                out.sheets
            );
        } else {
            println!(
                "ses-obs regen --check: {md_path} is up to date ({:?})",
                out.sheets
            );
        }
        return Ok(out.changed);
    }
    if out.changed {
        std::fs::write(md_path, &out.content)
            .map_err(|e| format!("cannot write {md_path}: {e}"))?;
        println!("ses-obs regen: rewrote {:?} in {md_path}", out.sheets);
    } else {
        println!("ses-obs regen: {md_path} already up to date");
    }
    Ok(false)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let rest = &args[1..];
    let outcome: Result<ExitCode, String> = match cmd.as_str() {
        "top" => match rest {
            [path, ..] => {
                let n = match parse_flag(rest, "--n") {
                    Ok(n) => n.unwrap_or(10.0) as usize,
                    Err(e) => {
                        eprintln!("ses-obs: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                cmd_top(path, n.max(1)).map(|()| ExitCode::SUCCESS)
            }
            _ => return usage(),
        },
        "trend" => match rest {
            [path] => cmd_trend(path).map(|()| ExitCode::SUCCESS),
            _ => return usage(),
        },
        "diff" => match rest {
            [a, b, ..] => {
                let defaults = DiffOptions::default();
                let opts = (|| -> Result<DiffOptions, String> {
                    Ok(DiffOptions {
                        rel_threshold: parse_flag(rest, "--threshold")?
                            .unwrap_or(defaults.rel_threshold),
                        abs_floor_ms: parse_flag(rest, "--abs-floor-ms")?
                            .unwrap_or(defaults.abs_floor_ms),
                        scale_b: parse_flag(rest, "--drill-slowdown")?.unwrap_or(defaults.scale_b),
                    })
                })();
                match opts {
                    Ok(opts) => cmd_diff(a, b, opts).map(|verdict| {
                        if verdict == Verdict::Regression {
                            ExitCode::FAILURE
                        } else {
                            ExitCode::SUCCESS
                        }
                    }),
                    Err(e) => Err(e),
                }
            }
            _ => return usage(),
        },
        "regen" => match rest {
            [jsonl, md] => cmd_regen(jsonl, md, false).map(|_| ExitCode::SUCCESS),
            [jsonl, md, flag] if flag == "--check" => cmd_regen(jsonl, md, true).map(|stale| {
                if stale {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }),
            _ => return usage(),
        },
        _ => return usage(),
    };
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ses-obs: {e}");
            ExitCode::FAILURE
        }
    }
}
