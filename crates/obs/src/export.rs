//! Exporters: Prometheus text-format metric snapshots and Chrome
//! trace-event JSON from completed trace trees.
//!
//! * **Prometheus** ([`prometheus_string`]) — counters and gauges verbatim,
//!   power-of-two histograms as cumulative `_bucket{le=...}` series, and
//!   the log-linear latency instruments as summaries with
//!   p50/p90/p99/p99.9 `quantile` labels. Written to the path in
//!   `SES_OBS_PROM_FILE` at summary time, so a run ends with a scrapeable
//!   snapshot without any server in the loop.
//! * **Chrome trace events** ([`chrome_trace_string`]) — the completed
//!   [`crate::trace::SpanEvent`] buffer as `ph:"X"` complete events
//!   (timestamps/durations in microseconds), loadable in Perfetto or
//!   `chrome://tracing`. Written to the path in `SES_OBS_CHROME`.
//!
//! Export failures log and return — telemetry must never take down the
//! run it observes.

use std::fmt::Write as _;

use crate::metrics;
use crate::trace::SpanEvent;

/// Prometheus metric name: `ses_` prefix, dots and dashes to underscores.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("ses_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// The quantiles every log-linear instrument exports.
pub const EXPORT_QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Renders the full metrics registry in Prometheus text exposition format.
pub fn prometheus_string() -> String {
    let mut out = String::new();
    for c in metrics::counters() {
        let name = prom_name(c.name());
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.get());
    }
    for g in metrics::gauges() {
        let name = prom_name(g.name());
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.get());
    }
    for h in metrics::histograms() {
        let name = prom_name(h.name());
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for b in 0..metrics::HIST_BUCKETS {
            let n = h.bucket_count(b);
            if n == 0 {
                continue;
            }
            cum += n;
            // Upper bound of a power-of-two bucket is the next floor - 1.
            let le = if b + 1 < metrics::HIST_BUCKETS {
                metrics::bucket_floor(b + 1).saturating_sub(1)
            } else {
                u64::MAX
            };
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_sum {}", h.sum());
        let _ = writeln!(out, "{name}_count {}", h.count());
    }
    for h in metrics::log_histograms() {
        let name = prom_name(h.name());
        let snap = h.snapshot();
        let _ = writeln!(out, "# TYPE {name} summary");
        for (q, label) in EXPORT_QUANTILES {
            let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {}", snap.quantile(q));
        }
        let _ = writeln!(out, "{name}_sum {}", snap.sum());
        let _ = writeln!(out, "{name}_count {}", snap.count());
    }
    out
}

/// Renders completed trace events as a Chrome trace-event JSON document
/// (`ph:"X"` complete events; `ts`/`dur` in microseconds).
pub fn chrome_trace_string(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur_us = e.dur_ns as f64 / 1e3;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"ses\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{dur_us:.3},\
             \"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
            crate::record::escape_json(e.name),
            e.tid,
            e.start_us,
            e.trace,
            e.span,
            e.parent
        );
    }
    out.push_str("]}");
    out
}

/// Writes the exports named by the environment: the Prometheus snapshot to
/// `SES_OBS_PROM_FILE` and the Chrome trace (from the current event
/// buffer, non-draining) to `SES_OBS_CHROME`. No-op for unset variables;
/// IO errors are logged, never propagated.
pub fn flush_env_exports() {
    if let Some(path) = std::env::var_os("SES_OBS_PROM_FILE") {
        if let Err(e) = std::fs::write(&path, prometheus_string()) {
            crate::log::info(format_args!(
                "ses-obs: failed to write Prometheus export {path:?}: {e}"
            ));
        }
    }
    if let Some(path) = std::env::var_os("SES_OBS_CHROME") {
        let events = crate::trace::events_snapshot();
        if let Err(e) = std::fs::write(&path, chrome_trace_string(&events)) {
            crate::log::info(format_args!(
                "ses-obs: failed to write Chrome trace export {path:?}: {e}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn prom_names_are_sanitised() {
        assert_eq!(prom_name("kernel.spmm.calls"), "ses_kernel_spmm_calls");
        assert_eq!(prom_name("slo.breach.extract"), "ses_slo_breach_extract");
    }

    #[test]
    fn prometheus_lines_are_well_formed() {
        crate::set_enabled_override(Some(true));
        metrics::SPMM_CALLS.add(3);
        metrics::EXPLAIN_NODE_NS.record(1500);
        metrics::EXPLAIN_REQUEST_NS.record(42_000);
        let text = prometheus_string();
        crate::set_enabled_override(None);

        assert!(text.contains("# TYPE ses_kernel_spmm_calls counter"));
        assert!(text.contains("# TYPE ses_explain_node_ns histogram"));
        assert!(text.contains("ses_explain_node_ns_bucket{le=\"+Inf\"}"));
        assert!(text.contains("# TYPE ses_explain_request_ns summary"));
        assert!(text.contains("ses_explain_request_ns{quantile=\"0.99\"}"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("line must be `name value`");
            assert!(name.starts_with("ses_"), "bad metric name in `{line}`");
            assert!(value.parse::<f64>().is_ok(), "bad value in `{line}`");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        crate::set_enabled_override(Some(true));
        metrics::EXPLAIN_NODE_NS.reset();
        for v in [10u64, 100, 1000, 10_000] {
            metrics::EXPLAIN_NODE_NS.record(v);
        }
        let text = prometheus_string();
        crate::set_enabled_override(None);
        let mut last = 0u64;
        let mut saw_bucket = false;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("ses_explain_node_ns_bucket{le=") {
                let value: u64 = rest.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(value >= last, "bucket counts must be cumulative: {line}");
                last = value;
                saw_bucket = true;
            }
        }
        assert!(saw_bucket);
        // Sibling tests may record into the same registry instrument
        // concurrently, so the floor is 4, not an exact count.
        assert!(last >= 4, "+Inf bucket must cover all recorded values");
    }

    #[test]
    fn chrome_trace_parses_and_carries_span_tree() {
        let events = vec![
            SpanEvent {
                trace: 7,
                span: 1,
                parent: 0,
                name: "explain.request",
                start_us: 100,
                dur_ns: 5_000,
                tid: 1,
            },
            SpanEvent {
                trace: 7,
                span: 2,
                parent: 1,
                name: "explain.stage.extract",
                start_us: 101,
                dur_ns: 2_500,
                tid: 1,
            },
        ];
        let text = chrome_trace_string(&events);
        let v = Json::parse(&text).expect("chrome trace must be valid JSON");
        let arr = match v.as_object().unwrap().get("traceEvents").unwrap() {
            Json::Arr(a) => a,
            other => panic!("traceEvents must be an array, got {other:?}"),
        };
        assert_eq!(arr.len(), 2);
        let first = arr[0].as_object().unwrap();
        assert_eq!(first.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(first.get("ts").unwrap().as_f64(), Some(100.0));
        let args = arr[1].as_object().unwrap().get("args").unwrap();
        assert_eq!(
            args.as_object().unwrap().get("parent").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn empty_event_list_still_yields_valid_json() {
        let text = chrome_trace_string(&[]);
        assert!(Json::parse(&text).is_ok());
    }
}
