//! Per-stage latency budgets (`SloPolicy`) with breach accounting.
//!
//! A policy maps stage names (`extract`, `encode`, `mask`, `rank`,
//! `request`, `epoch`, …) to nanosecond budgets. Instrumented sites call
//! [`SloPolicy::observe`] with a measured duration; a breach increments the
//! matching `slo.breach.*` counter (visible in the summary table, the JSONL
//! records, and the Prometheus export) and returns `false` so callers can
//! log context. Observation never fails the operation itself — SLOs are
//! accounting, not control flow.
//!
//! The process-wide policy comes from the `SES_SLO` environment variable, a
//! comma-separated list of `stage=duration` entries where durations accept
//! `ns`/`us`/`ms`/`s` suffixes (no suffix = ns):
//!
//! ```text
//! SES_SLO=extract=200us,mask=1ms,request=5ms,epoch=2s
//! ```
//!
//! Malformed entries are ignored with a note on stderr rather than
//! panicking — a typo in an env var must not take down a training run.

use std::sync::{Mutex, OnceLock};

use crate::metrics;

/// One stage's budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageBudget {
    pub stage: String,
    pub budget_ns: u64,
}

/// A set of per-stage latency budgets. Empty policies observe everything
/// and breach nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloPolicy {
    budgets: Vec<StageBudget>,
}

impl SloPolicy {
    pub fn empty() -> Self {
        SloPolicy::default()
    }

    /// Parses a `stage=duration,stage=duration` spec. Returns the policy
    /// plus a list of entries that failed to parse (the caller decides how
    /// loudly to complain).
    pub fn parse(spec: &str) -> (Self, Vec<String>) {
        let mut budgets = Vec::new();
        let mut rejected = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            match entry.split_once('=') {
                Some((stage, dur)) if !stage.trim().is_empty() => {
                    match parse_duration_ns(dur.trim()) {
                        Some(budget_ns) => budgets.push(StageBudget {
                            stage: stage.trim().to_string(),
                            budget_ns,
                        }),
                        None => rejected.push(entry.to_string()),
                    }
                }
                _ => rejected.push(entry.to_string()),
            }
        }
        (SloPolicy { budgets }, rejected)
    }

    pub fn is_empty(&self) -> bool {
        self.budgets.is_empty()
    }

    pub fn budgets(&self) -> &[StageBudget] {
        &self.budgets
    }

    /// The budget for `stage`, if the policy sets one.
    pub fn budget_ns(&self, stage: &str) -> Option<u64> {
        self.budgets
            .iter()
            .find(|b| b.stage == stage)
            .map(|b| b.budget_ns)
    }

    /// Checks a measured duration against the stage's budget. Returns
    /// `true` when within budget (or no budget is set); on a breach, bumps
    /// the stage's `slo.breach.*` counter and returns `false`.
    pub fn observe(&self, stage: &str, ns: u64) -> bool {
        match self.budget_ns(stage) {
            None => true,
            Some(budget) if ns <= budget => true,
            Some(_) => {
                breach_counter(stage).incr();
                false
            }
        }
    }
}

/// The `slo.breach.*` counter for a stage (unknown stages aggregate into
/// `slo.breach.other`).
pub fn breach_counter(stage: &str) -> &'static metrics::Counter {
    match stage {
        "extract" => &metrics::SLO_BREACH_EXTRACT,
        "encode" => &metrics::SLO_BREACH_ENCODE,
        "mask" => &metrics::SLO_BREACH_MASK,
        "rank" => &metrics::SLO_BREACH_RANK,
        "epoch" => &metrics::SLO_BREACH_EPOCH,
        "request" => &metrics::SLO_BREACH_REQUEST,
        _ => &metrics::SLO_BREACH_OTHER,
    }
}

/// `"200us"` → `200_000`. Accepts `ns`/`us`/`ms`/`s` suffixes and decimal
/// magnitudes; bare numbers are nanoseconds.
pub fn parse_duration_ns(s: &str) -> Option<u64> {
    let (mag, scale) = if let Some(m) = s.strip_suffix("ns") {
        (m, 1.0)
    } else if let Some(m) = s.strip_suffix("us") {
        (m, 1e3)
    } else if let Some(m) = s.strip_suffix("ms") {
        (m, 1e6)
    } else if let Some(m) = s.strip_suffix('s') {
        (m, 1e9)
    } else {
        (s, 1.0)
    };
    let mag: f64 = mag.trim().parse().ok()?;
    if !mag.is_finite() || mag < 0.0 {
        return None;
    }
    Some((mag * scale) as u64)
}

fn global_slot() -> &'static Mutex<Option<SloPolicy>> {
    static SLOT: OnceLock<Mutex<Option<SloPolicy>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// The process-wide policy: `SES_SLO` parsed on first use, or whatever
/// [`set_global`] installed. Cheap to call per epoch, not per kernel.
pub fn global() -> SloPolicy {
    let mut slot = global_slot().lock().unwrap_or_else(|e| e.into_inner());
    slot.get_or_insert_with(|| {
        let spec = std::env::var("SES_SLO").unwrap_or_default();
        let (policy, rejected) = SloPolicy::parse(&spec);
        for bad in rejected {
            crate::log::info(format_args!(
                "ses-obs: ignoring malformed SES_SLO entry `{bad}`"
            ));
        }
        policy
    })
    .clone()
}

/// Replaces the process-wide policy (tests, drills). `None` re-arms the
/// `SES_SLO` lookup.
pub fn set_global(policy: Option<SloPolicy>) {
    *global_slot().lock().unwrap_or_else(|e| e.into_inner()) = policy;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_spec_with_unit_suffixes() {
        let (p, bad) = SloPolicy::parse("extract=200us, mask=1.5ms,epoch=2s,raw=750");
        assert!(bad.is_empty());
        assert_eq!(p.budget_ns("extract"), Some(200_000));
        assert_eq!(p.budget_ns("mask"), Some(1_500_000));
        assert_eq!(p.budget_ns("epoch"), Some(2_000_000_000));
        assert_eq!(p.budget_ns("raw"), Some(750));
        assert_eq!(p.budget_ns("absent"), None);
    }

    #[test]
    fn malformed_entries_are_rejected_not_fatal() {
        let (p, bad) = SloPolicy::parse("ok=1ms,=5ms,broken,neg=-3ms,nan=xs");
        assert_eq!(p.budgets().len(), 1);
        assert_eq!(bad.len(), 4);
    }

    #[test]
    fn observe_counts_breaches_per_stage() {
        crate::set_enabled_override(Some(true));
        let (p, _) = SloPolicy::parse("extract=1us,epoch=1ms");
        let before_extract = metrics::SLO_BREACH_EXTRACT.get();
        let before_epoch = metrics::SLO_BREACH_EPOCH.get();
        assert!(p.observe("extract", 500)); // within budget
        assert!(!p.observe("extract", 2_000)); // breach
        assert!(!p.observe("epoch", 5_000_000)); // breach
        assert!(p.observe("unbudgeted", u64::MAX)); // no budget, no breach
        assert_eq!(metrics::SLO_BREACH_EXTRACT.get(), before_extract + 1);
        assert_eq!(metrics::SLO_BREACH_EPOCH.get(), before_epoch + 1);
        crate::set_enabled_override(None);
    }

    #[test]
    fn unknown_stage_breaches_aggregate_into_other() {
        crate::set_enabled_override(Some(true));
        let (p, _) = SloPolicy::parse("custom_stage=1ns");
        let before = metrics::SLO_BREACH_OTHER.get();
        assert!(!p.observe("custom_stage", 100));
        assert_eq!(metrics::SLO_BREACH_OTHER.get(), before + 1);
        crate::set_enabled_override(None);
    }

    #[test]
    fn global_override_roundtrips() {
        let (p, _) = SloPolicy::parse("request=9ms");
        set_global(Some(p.clone()));
        assert_eq!(global().budget_ns("request"), Some(9_000_000));
        set_global(None);
    }
}
