//! Swappable sync primitives for the telemetry hot paths.
//!
//! Normal builds re-export the plain `std` types, so there is zero overhead
//! and zero behavior change. With the `race` feature on, the same names
//! resolve to the `ses-race` model-checker shim: every atomic op and lock
//! becomes a scheduling point when running inside `ses_race::check`, which is
//! how the `ses-race` CLI explores interleavings of the counter, histogram
//! and trace-buffer code (see docs/CORRECTNESS.md, "Interleaving checking").
//!
//! The `race` feature is only ever enabled by the model-checking suite; it
//! must never be part of a default or release build.

#[cfg(feature = "race")]
pub(crate) use ses_race::sync::{AtomicI64, AtomicU32, AtomicU64, AtomicU8, Mutex};

#[cfg(not(feature = "race"))]
pub(crate) use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, AtomicU8};
#[cfg(not(feature = "race"))]
pub(crate) use std::sync::Mutex;
