//! Human-oriented logging routed through `ses-obs`.
//!
//! Library crates in this workspace must not call `println!`/`eprintln!`
//! directly (the `no-println-in-lib` lint rule enforces it). They use the
//! [`crate::info!`] / [`crate::outln!`] macros, which land here:
//!
//! * [`info`] writes a progress/diagnostic line to **stderr** (always — a
//!   human is watching regardless of telemetry state) and mirrors it to the
//!   JSONL sink as a `{"event":"log",...}` record when the sink is active;
//! * [`outln`] writes a result line (tables, CSV) to **stdout** with no
//!   sink mirror — stdout is the deliverable, the sink has structured
//!   records for the same data.
//!
//! This module is the one place in the workspace allowed to talk to the
//! standard streams from library code; it does so via `io::Write` on the
//! locked handles.

use std::fmt;
use std::io::Write;

/// Writes a diagnostic line to stderr and mirrors it to the sink.
pub fn info(args: fmt::Arguments<'_>) {
    let msg = fmt::format(args);
    {
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(msg.as_bytes());
        let _ = err.write_all(b"\n");
    }
    if crate::sink::active() {
        crate::Record::new("log").str("msg", &msg).emit();
    }
}

/// Writes a result line to stdout (no sink mirror).
pub fn outln(args: fmt::Arguments<'_>) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_fmt(args);
    let _ = out.write_all(b"\n");
}

/// Diagnostic line to stderr, mirrored to the JSONL sink when active.
/// `ses_obs::info!("epoch {e}: loss {loss:.4}")`
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::info(format_args!($($arg)*))
    };
}

/// Result line to stdout (tables, CSV). `ses_obs::outln!("{row}")`
#[macro_export]
macro_rules! outln {
    () => {
        $crate::log::outln(format_args!(""))
    };
    ($($arg:tt)*) => {
        $crate::log::outln(format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn info_mirrors_to_active_sink() {
        crate::set_enabled_override(Some(true));
        crate::sink::begin_capture();
        crate::info!("hello {}", 42);
        let cap = crate::sink::take_capture();
        let line = cap.lines().next().expect("one mirrored record");
        let v = crate::json::Json::parse(line).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("event").unwrap().as_str(), Some("log"));
        assert_eq!(obj.get("msg").unwrap().as_str(), Some("hello 42"));
        crate::set_enabled_override(None);
    }
}
