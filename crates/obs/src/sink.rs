//! JSONL event sink: one JSON object per line, appended to the file named
//! by `SES_OBS_FILE` (truncated at first write of the process), or captured
//! into an in-memory buffer for tests.
//!
//! The sink is the only locking component of `ses-obs` — record emission
//! happens at epoch granularity (dozens per run), never inside kernels, so
//! a mutex is fine here.

use std::fs::File;
use std::io::Write;
use std::sync::Mutex;

enum Target {
    /// Not yet resolved from the environment.
    Unresolved,
    /// No `SES_OBS_FILE`; records are dropped (stderr logging still works).
    None,
    File(File),
    /// Test mode: capture lines in memory.
    Buffer(String),
}

static SINK: Mutex<Target> = Mutex::new(Target::Unresolved);

fn resolve(target: &mut Target) {
    if !matches!(target, Target::Unresolved) {
        return;
    }
    *target = match std::env::var_os("SES_OBS_FILE") {
        Some(path) => match File::create(&path) {
            Ok(f) => Target::File(f),
            Err(e) => {
                crate::log::info(format_args!(
                    "ses-obs: cannot open SES_OBS_FILE {path:?}: {e}"
                ));
                Target::None
            }
        },
        None => Target::None,
    };
}

/// Appends one line (no trailing newline expected) to the active sink.
/// No-op when telemetry is disabled or no file/buffer target exists.
pub fn write_line(line: &str) {
    if !crate::enabled() {
        return;
    }
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    resolve(&mut guard);
    match &mut *guard {
        Target::File(f) => {
            // Ignore IO errors: telemetry must never take down training.
            let _ = f.write_all(line.as_bytes());
            let _ = f.write_all(b"\n");
        }
        Target::Buffer(buf) => {
            buf.push_str(line);
            buf.push('\n');
        }
        Target::None | Target::Unresolved => {}
    }
}

/// True when the sink has somewhere to write (file or capture buffer).
/// Lets callers skip building expensive records that would be dropped.
pub fn active() -> bool {
    if !crate::enabled() {
        return false;
    }
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    resolve(&mut guard);
    matches!(&*guard, Target::File(_) | Target::Buffer(_))
}

/// Redirects the sink into an in-memory buffer (test helper). Any previous
/// target is dropped; pair with [`take_capture`].
pub fn begin_capture() {
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    *guard = Target::Buffer(String::new());
}

/// Returns everything captured since [`begin_capture`] and restores the
/// environment-resolved target.
pub fn take_capture() -> String {
    let mut guard = match SINK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    match std::mem::replace(&mut *guard, Target::Unresolved) {
        Target::Buffer(buf) => buf,
        other => {
            *guard = other;
            String::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_roundtrip() {
        crate::set_enabled_override(Some(true));
        begin_capture();
        write_line("{\"event\":\"a\"}");
        write_line("{\"event\":\"b\"}");
        let got = take_capture();
        assert_eq!(got, "{\"event\":\"a\"}\n{\"event\":\"b\"}\n");
        crate::set_enabled_override(None);
    }

    #[test]
    fn disabled_sink_drops_lines() {
        crate::set_enabled_override(Some(true));
        begin_capture();
        crate::set_enabled_override(Some(false));
        write_line("{\"event\":\"dropped\"}");
        crate::set_enabled_override(Some(true));
        let got = take_capture();
        assert!(got.is_empty());
        crate::set_enabled_override(None);
    }
}
