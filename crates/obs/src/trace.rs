//! Request-scoped trace contexts: `TraceId`/`SpanId`/parent propagation for
//! the [`crate::span!`] tracer.
//!
//! The flat span table answers "how much time went to `kernel.spmm`"; it
//! cannot answer "what did *this* explain request spend per stage". A
//! **trace** is one request-shaped unit of work: [`request`] opens a root
//! span with a fresh [`TraceId`], every `span!` guard that opens while a
//! trace is active on the thread becomes a child [`SpanEvent`] with its
//! parent's [`SpanId`], and the completed events reconstruct the tree.
//!
//! **Cross-thread propagation.** Contexts are thread-local; a scoped worker
//! (e.g. `ses_tensor::par::run_tasks`) captures [`current`] on the
//! submitting thread and calls [`TraceContext::adopt`] inside the worker
//! closure, so kernel spans land in the submitting request's tree even when
//! they run on another thread — including the serial replay after a worker
//! panic (`run_isolated`), whose guards simply drop during unwind and leave
//! the context balanced.
//!
//! Identifiers come from process-wide atomic counters, not randomness: the
//! workspace bans unseeded RNGs (`no-thread-rng`), ids only need process
//! uniqueness, and monotone ids make test assertions deterministic.
//!
//! Completed events go to a bounded global buffer (capacity
//! [`EVENT_CAP`]; overflow increments `trace.dropped` rather than growing
//! without bound). Export drains it into Chrome trace-event JSON (see
//! [`crate::export`]).

use std::cell::Cell;
use std::sync::atomic::Ordering;
use std::sync::OnceLock;

use crate::sync::{AtomicU32, AtomicU64, Mutex};
use std::time::Instant;

/// Process-unique id of one request-shaped unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Process-unique id of one span occurrence within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// Root marker: a [`SpanEvent`] whose `parent` is `NO_PARENT` is the trace
/// root.
pub const NO_PARENT: u64 = 0;

/// Completed-event buffer capacity; overflow is counted, not stored.
pub const EVENT_CAP: usize = 1 << 16;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// Active context on this thread: `(trace_id, current_span_id)`.
    static CURRENT: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
    /// Small dense id for Chrome `tid` fields (thread ids are opaque).
    static THREAD_IX: Cell<u32> = const { Cell::new(0) };
}

/// Dense 1-based index of the calling thread, assigned on first use.
pub fn thread_index() -> u32 {
    THREAD_IX.with(|t| {
        let mut ix = t.get();
        if ix == 0 {
            ix = NEXT_THREAD.fetch_add(1, Ordering::Relaxed); // ordering: dense id allocation; uniqueness via the RMW alone
            t.set(ix);
        }
        ix
    })
}

/// One completed span occurrence inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub trace: u64,
    pub span: u64,
    /// Parent span id, or [`NO_PARENT`] for the trace root.
    pub parent: u64,
    pub name: &'static str,
    /// Start offset from process start, microseconds.
    pub start_us: u64,
    pub dur_ns: u64,
    /// Dense index of the recording thread (Chrome `tid`).
    pub tid: u32,
}

fn events() -> &'static Mutex<Vec<SpanEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

fn push_event(ev: SpanEvent) {
    let mut buf = events().lock().unwrap_or_else(|e| e.into_inner());
    if buf.len() < EVENT_CAP {
        buf.push(ev);
    } else {
        drop(buf);
        crate::metrics::TRACE_DROPPED.incr();
    }
}

/// Copy of all completed events recorded so far (non-draining, so
/// concurrent tests filtering by trace id don't steal each other's events).
pub fn events_snapshot() -> Vec<SpanEvent> {
    events().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Drains and returns all completed events (exporters).
pub fn take_events() -> Vec<SpanEvent> {
    std::mem::take(&mut *events().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Clears the completed-event buffer.
pub fn reset_events() {
    events().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// A capturable handle to the calling thread's active trace position, for
/// handing work to another thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    trace: u64,
    parent: u64,
}

/// The calling thread's active context, if a trace is open.
pub fn current() -> Option<TraceContext> {
    CURRENT
        .with(Cell::get)
        .map(|(trace, parent)| TraceContext { trace, parent })
}

impl TraceContext {
    pub fn trace_id(&self) -> TraceId {
        TraceId(self.trace)
    }

    /// Installs this context on the calling thread for the guard's
    /// lifetime; spans opened meanwhile become children of the captured
    /// position. The previous context (normally `None` on a fresh worker)
    /// is restored on drop.
    pub fn adopt(self) -> AdoptGuard {
        let prev = CURRENT.with(|c| c.replace(Some((self.trace, self.parent))));
        AdoptGuard { prev }
    }
}

/// RAII guard restoring the pre-[`TraceContext::adopt`] context.
pub struct AdoptGuard {
    prev: Option<(u64, u64)>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Frame carried by a `span!` guard while a trace is active (crate-private:
/// only `spans::span` opens child frames).
pub(crate) struct Frame {
    trace: u64,
    span: u64,
    parent: u64,
}

/// Allocates a child span under the thread's active context, making it
/// current. Returns `None` (and records nothing) outside a trace.
pub(crate) fn enter_span() -> Option<Frame> {
    CURRENT.with(|c| {
        c.get().map(|(trace, parent)| {
            let span = NEXT_SPAN.fetch_add(1, Ordering::Relaxed); // ordering: dense id allocation; uniqueness via the RMW alone
            c.set(Some((trace, span)));
            Frame {
                trace,
                span,
                parent,
            }
        })
    })
}

/// Completes a child span: restores the parent context and buffers the
/// event.
pub(crate) fn exit_span(frame: Frame, name: &'static str, start: Instant, dur_ns: u64) {
    CURRENT.with(|c| c.set(Some((frame.trace, frame.parent))));
    crate::metrics::TRACE_SPANS.incr();
    push_event(SpanEvent {
        trace: frame.trace,
        span: frame.span,
        parent: frame.parent,
        name,
        start_us: crate::record::since_start_us(start),
        dur_ns,
        tid: thread_index(),
    });
}

/// Live state of an open request: its ids plus the context it displaced.
#[derive(Clone, Copy)]
struct OpenRequest {
    trace: u64,
    root_span: u64,
    saved: Option<(u64, u64)>,
}

/// RAII guard for one request-shaped trace; see [`request`].
pub struct RequestGuard {
    name: &'static str,
    /// `None` when tracing was off at open.
    frame: Option<OpenRequest>,
    start: Instant,
}

/// Opens a new trace with `name` as its root span on the calling thread.
/// Inert when telemetry is disabled. Nested requests are permitted (the
/// outer context is restored on drop) but each gets an independent trace.
pub fn request(name: &'static str) -> RequestGuard {
    if !crate::enabled() {
        return RequestGuard {
            name,
            frame: None,
            start: Instant::now(),
        };
    }
    let trace = NEXT_TRACE.fetch_add(1, Ordering::Relaxed); // ordering: dense id allocation; uniqueness via the RMW alone
    let span = NEXT_SPAN.fetch_add(1, Ordering::Relaxed); // ordering: dense id allocation; uniqueness via the RMW alone
    let prev = CURRENT.with(|c| c.replace(Some((trace, span))));
    RequestGuard {
        name,
        frame: Some(OpenRequest {
            trace,
            root_span: span,
            saved: prev,
        }),
        start: Instant::now(),
    }
}

impl RequestGuard {
    /// This request's trace id (`None` when tracing was off at open).
    pub fn trace_id(&self) -> Option<TraceId> {
        self.frame.map(|f| TraceId(f.trace))
    }

    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for RequestGuard {
    fn drop(&mut self) {
        let Some(open) = self.frame else {
            return;
        };
        let dur_ns = self.elapsed_ns();
        CURRENT.with(|c| c.set(open.saved));
        crate::metrics::TRACE_REQUESTS.incr();
        push_event(SpanEvent {
            trace: open.trace,
            span: open.root_span,
            parent: NO_PARENT,
            name: self.name,
            start_us: crate::record::since_start_us(self.start),
            dur_ns,
            tid: thread_index(),
        });
    }
}

/// Tree-shape check used by tests and `obs-validate`: the events of `trace`
/// form exactly one root and every non-root parent id resolves to another
/// event of the same trace (no orphan spans).
pub fn is_well_formed_tree(events: &[SpanEvent], trace: TraceId) -> bool {
    let ours: Vec<&SpanEvent> = events.iter().filter(|e| e.trace == trace.0).collect();
    if ours.is_empty() {
        return false;
    }
    let mut ids = std::collections::BTreeSet::new();
    for e in &ours {
        if !ids.insert(e.span) {
            return false; // duplicate span id
        }
    }
    let mut roots = 0;
    for e in &ours {
        if e.parent == NO_PARENT {
            roots += 1;
        } else if !ids.contains(&e.parent) {
            return false; // orphan: parent never completed in this trace
        }
    }
    roots == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_records_root_and_children() {
        crate::set_enabled_override(Some(true));
        let trace;
        {
            let req = request("test.request");
            trace = req.trace_id().expect("tracing on");
            let _outer = crate::spans::span("test.req_outer");
            let _inner = crate::spans::span("test.req_inner");
        }
        let events = events_snapshot();
        assert!(is_well_formed_tree(&events, trace));
        let ours: Vec<_> = events.iter().filter(|e| e.trace == trace.0).collect();
        assert_eq!(ours.len(), 3);
        let root = ours.iter().find(|e| e.parent == NO_PARENT).unwrap();
        assert_eq!(root.name, "test.request");
        let outer = ours.iter().find(|e| e.name == "test.req_outer").unwrap();
        let inner = ours.iter().find(|e| e.name == "test.req_inner").unwrap();
        assert_eq!(outer.parent, root.span);
        assert_eq!(inner.parent, outer.span);
        crate::set_enabled_override(None);
    }

    #[test]
    fn spans_outside_a_request_record_no_events() {
        crate::set_enabled_override(Some(true));
        {
            let _g = crate::spans::span("test.untraced");
        }
        let after = events_snapshot();
        assert!(
            after.iter().all(|e| e.name != "test.untraced"),
            "span without an active trace must not buffer events"
        );
        crate::set_enabled_override(None);
    }

    #[test]
    fn disabled_request_is_inert() {
        crate::set_enabled_override(Some(false));
        let req = request("test.request_off");
        assert!(req.trace_id().is_none());
        assert!(current().is_none());
        drop(req);
        crate::set_enabled_override(None);
    }

    #[test]
    fn adoption_links_worker_spans_to_submitting_trace() {
        crate::set_enabled_override(Some(true));
        let trace;
        {
            let req = request("test.adopt_request");
            trace = req.trace_id().unwrap();
            let ctx = current().expect("context active");
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(move || {
                        let _adopt = ctx.adopt();
                        let _g = crate::spans::span("test.adopt_worker");
                    });
                }
            });
        }
        let events = events_snapshot();
        assert!(is_well_formed_tree(&events, trace));
        let workers = events
            .iter()
            .filter(|e| e.trace == trace.0 && e.name == "test.adopt_worker")
            .count();
        assert_eq!(workers, 2);
        crate::set_enabled_override(None);
    }

    #[test]
    fn well_formed_rejects_orphans_and_double_roots() {
        let mk = |span, parent| SpanEvent {
            trace: 99,
            span,
            parent,
            name: "x",
            start_us: 0,
            dur_ns: 1,
            tid: 1,
        };
        let good = vec![mk(1, NO_PARENT), mk(2, 1), mk(3, 2)];
        assert!(is_well_formed_tree(&good, TraceId(99)));
        let orphan = vec![mk(1, NO_PARENT), mk(3, 2)];
        assert!(!is_well_formed_tree(&orphan, TraceId(99)));
        let two_roots = vec![mk(1, NO_PARENT), mk(2, NO_PARENT)];
        assert!(!is_well_formed_tree(&two_roots, TraceId(99)));
        assert!(!is_well_formed_tree(&good, TraceId(98)));
    }
}
