//! Log-linear (HDR-style) latency histogram with bounded relative error.
//!
//! The power-of-two [`crate::Histogram`] answers "what order of magnitude"
//! but cannot state a defensible p99: one bucket spans a full octave, so a
//! quantile read off it can be wrong by 2×. This histogram subdivides each
//! octave into [`SUB_BUCKETS`] linear sub-buckets, which caps the half-width
//! of any bucket at 1/64 of its lower bound — the documented
//! [`RELATIVE_ERROR_BOUND`] for every quantile estimate. Values below
//! [`LINEAR_MAX`] get one bucket each and are reported exactly.
//!
//! The record path is the same shape as the rest of the registry: an
//! [`crate::enabled`] check, then three relaxed atomic RMWs — safe to call
//! from `par` worker threads. Analysis happens on an immutable
//! [`HistSnapshot`], which also supports `merge` so per-thread or per-run
//! histograms combine associatively (property-tested in
//! `tests/hist_props.rs`).

use std::sync::atomic::Ordering;

use crate::sync::AtomicU64;

/// Each octave `[2^e, 2^(e+1))` is split into `2^SUB_BITS` linear buckets.
pub const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Values below this are bucketed exactly (one bucket per value).
pub const LINEAR_MAX: u64 = 1 << (SUB_BITS + 1);
/// Total bucket count: 64 exact buckets + 32 per octave for exponents
/// 6..=63.
pub const NUM_BUCKETS: usize = LINEAR_MAX as usize + (63 - SUB_BITS as usize) * SUB_BUCKETS;

/// Worst-case relative error of any quantile estimate for values ≥
/// [`LINEAR_MAX`] (values below are exact). A bucket at exponent `e` has
/// width `2^(e-5)` and lower bound ≥ `2^e`; the midpoint representative is
/// at most half a bucket from the true sample, so the error is ≤ 1/64 of
/// the value.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / 64.0;

/// Bucket index for a value. Exact below [`LINEAR_MAX`]; log-linear above.
#[inline]
pub fn log_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return usize::try_from(v).unwrap_or(0);
    }
    let e = 63 - v.leading_zeros(); // 6..=63
    let sub = (v >> (e - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
    LINEAR_MAX as usize
        + (e as usize - (SUB_BITS as usize + 1)) * SUB_BUCKETS
        + usize::try_from(sub).unwrap_or(0)
}

/// Inclusive `(lo, hi)` value range of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < LINEAR_MAX as usize {
        return (idx as u64, idx as u64);
    }
    let off = idx - LINEAR_MAX as usize;
    let e = (off / SUB_BUCKETS) as u32 + SUB_BITS + 1; // 6..=63
    let sub = (off % SUB_BUCKETS) as u64;
    let width = 1u64 << (e - SUB_BITS);
    let lo = (1u64 << e) + sub * width;
    (lo, lo + (width - 1))
}

/// Midpoint representative of bucket `idx` — the value a quantile estimate
/// reports for a sample landing in that bucket.
pub fn representative(idx: usize) -> u64 {
    let (lo, hi) = bucket_bounds(idx);
    lo + (hi - lo) / 2
}

/// Concurrent log-linear histogram; `const`-constructible for `static`
/// registry slots (the bucket array is ~15 KiB per instrument).
pub struct LogHistogram {
    name: &'static str,
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl LogHistogram {
    pub const fn new(name: &'static str) -> Self {
        LogHistogram {
            name,
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[log_index(v)].fetch_add(1, Ordering::Relaxed); // ordering: per-bucket tally; no payload
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: relaxed tally; snapshots tolerate torn count/sum
        self.sum.fetch_add(v, Ordering::Relaxed); // ordering: relaxed tally; snapshots tolerate torn count/sum
        self.max.fetch_max(v, Ordering::Relaxed); // ordering: high-watermark tally
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: telemetry read; staleness is fine
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // ordering: telemetry read; staleness is fine
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed) // ordering: telemetry read; staleness is fine
    }

    /// Quantile estimate over everything recorded so far (see
    /// [`HistSnapshot::quantile`] for semantics and error bound).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Immutable copy of the current state for analysis/merging. Relaxed
    /// loads: concurrent recording may be torn across `count`/`sum`, which
    /// is acceptable for telemetry.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut counts = vec![0u64; NUM_BUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed); // ordering: snapshot is documented as possibly torn
        }
        HistSnapshot {
            counts,
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }

    /// Zeroes the histogram (test/bench helper).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // ordering: test/bench zeroing; nobody synchronises on it
        }
        self.count.store(0, Ordering::Relaxed); // ordering: test/bench zeroing
        self.sum.store(0, Ordering::Relaxed); // ordering: test/bench zeroing
        self.max.store(0, Ordering::Relaxed); // ordering: test/bench zeroing
    }
}

/// Owned, single-threaded histogram state: the analysis half of
/// [`LogHistogram`], also usable standalone (CLI aggregations, tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl HistSnapshot {
    pub fn new() -> Self {
        HistSnapshot {
            counts: vec![0u64; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    pub fn record(&mut self, v: u64) {
        self.counts[log_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Pointwise sum with another snapshot. Associative and commutative:
    /// merging per-thread histograms in any grouping yields the same
    /// result (property-tested).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket count (for exporters walking the distribution).
    pub fn bucket_count(&self, idx: usize) -> u64 {
        self.counts[idx]
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`): the representative of the
    /// bucket holding the sample of rank `ceil(q·n)` (1-based, matching
    /// `sorted[ceil(q·n) - 1]`). Exact for values below [`LINEAR_MAX`];
    /// otherwise within [`RELATIVE_ERROR_BOUND`] of the true sample. Returns
    /// 0 on an empty histogram; the estimate is clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return representative(idx).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_bounds_invert() {
        // Every bucket's bounds map back to its own index, buckets tile the
        // u64 range without gaps, and widths are as documented.
        let mut expected_lo = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "gap before bucket {idx}");
            assert_eq!(log_index(lo), idx);
            assert_eq!(log_index(hi), idx);
            assert!(representative(idx) >= lo && representative(idx) <= hi);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "buckets must cover u64 exactly");
        assert_eq!(log_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = HistSnapshot::new();
        for v in [0u64, 1, 5, 5, 17, 63] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 5);
        assert_eq!(h.quantile(1.0), 63);
    }

    #[test]
    fn quantiles_respect_relative_error_bound() {
        let mut h = HistSnapshot::new();
        let mut vals: Vec<u64> = (0..2000u64).map(|i| i * i * 37 + 100).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1];
            let est = h.quantile(q);
            let tol = (exact as f64 * RELATIVE_ERROR_BOUND).ceil() as u64 + 1;
            assert!(
                est.abs_diff(exact) <= tol,
                "q={q}: est {est} vs exact {exact} (tol {tol})"
            );
        }
    }

    #[test]
    fn static_histogram_records_concurrently() {
        crate::set_enabled_override(Some(true));
        static H: LogHistogram = LogHistogram::new("test.loghist");
        H.reset();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..1000u64 {
                        H.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(H.count(), 4000);
        assert_eq!(H.max(), 3999);
        let snap = H.snapshot();
        // p50 of 0..4000 is ~2000; bound plus bucket width slack.
        let p50 = snap.quantile(0.5);
        assert!((1900..=2100).contains(&p50), "p50 {p50}");
        crate::set_enabled_override(None);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        crate::set_enabled_override(Some(false));
        static H: LogHistogram = LogHistogram::new("test.loghist_off");
        H.record(42);
        assert_eq!(H.count(), 0);
        crate::set_enabled_override(None);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = HistSnapshot::new();
        let mut b = HistSnapshot::new();
        let mut all = HistSnapshot::new();
        for v in [3u64, 70, 900, 1_000_000] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 70, 12_345] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
