//! Property tests extending the verifier's exhaustive small-model bound with
//! randomised shapes: arbitrary `(n, parts)` grids for `even_ranges`,
//! arbitrary degree sequences for `nnz_balanced_ranges` (with the
//! observational split proofs), and randomly generated well-formed dry-run
//! traces that the tape-IR verifier must accept.

use proptest::prelude::*;
use ses_tensor::par::{even_ranges, nnz_balanced_ranges};
use ses_verify::builder::IrBuilder;
use ses_verify::partition::{
    check_entry_partition, check_row_partition, check_split_entries, check_split_rows,
};
use ses_verify::tape_check::{verify_tape, TapeCheckConfig};
use ses_verify::{error_count, warning_count};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn even_ranges_holds_invariants_beyond_the_exhaustive_bound(
        n in 0usize..10_000,
        parts in 1usize..128,
    ) {
        let ranges = even_ranges(n, parts);
        let diags = check_row_partition("prop", n, parts, &ranges, true);
        prop_assert!(diags.is_empty(), "n={n} parts={parts}: {diags:?}");
    }

    #[test]
    fn split_rows_marker_proof_holds_on_random_shapes(
        n in 1usize..200,
        parts in 1usize..17,
        cols in 1usize..5,
    ) {
        let ranges = even_ranges(n, parts);
        prop_assert!(check_row_partition("prop", n, parts, &ranges, true).is_empty());
        let diags = check_split_rows("prop", n, cols, &ranges);
        prop_assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nnz_balanced_holds_invariants_on_random_degree_sequences(
        degrees in proptest::collection::vec(0usize..40, 0..60),
        parts in 1usize..17,
    ) {
        let mut indptr = Vec::with_capacity(degrees.len() + 1);
        indptr.push(0usize);
        for &d in &degrees {
            indptr.push(indptr[indptr.len() - 1] + d);
        }
        let ranges = nnz_balanced_ranges(&indptr, parts);
        let diags = check_entry_partition("prop", &indptr, parts, &ranges);
        prop_assert!(diags.is_empty(), "indptr={indptr:?} parts={parts}: {diags:?}");
        if !ranges.is_empty() {
            let diags = check_split_entries("prop", &indptr, &ranges);
            prop_assert!(diags.is_empty(), "{diags:?}");
        }
    }

    #[test]
    fn verifier_accepts_random_wellformed_mlp_traces(
        dims in proptest::collection::vec(1usize..9, 2..6),
        rows in 1usize..12,
    ) {
        // Random-depth dense chain: x(rows×d0) → matmul w(d_i×d_{i+1}) →
        // relu → … → mean_all loss. Built entirely through the checked
        // builder API, so the verifier must find nothing.
        let mut b = IrBuilder::new();
        let mut h = b.constant(rows, dims[0]);
        for w in dims.windows(2) {
            let wt = b.leaf(w[0], w[1]);
            h = b.binary("matmul", h, wt).expect("checked matmul");
            h = b.unary("relu", h).expect("checked relu");
        }
        let loss = b.unary("mean_all", h).expect("checked mean_all");
        let ir = b.finish();
        let diags = verify_tape(&ir, &TapeCheckConfig {
            loss: Some(loss),
            leak_budget: Some(ses_tensor::LeakBudget::zero()),
        });
        prop_assert_eq!(error_count(&diags), 0, "{:?}", diags);
        prop_assert_eq!(warning_count(&diags), 0, "{:?}", diags);
    }
}
