//! The named partitioner edge cases from the verifier issue, asserted
//! directly against the real `ses_tensor::par` partitioners: empty matrix,
//! all-empty rows, more parts than rows, zero stored entries, and a single
//! massive row. Each case must satisfy every verifier invariant — and the
//! packaged [`edge_case_suite`] sweep must stay clean.

use ses_tensor::par::{even_ranges, nnz_balanced_ranges};
use ses_verify::partition::{
    check_entry_partition, check_row_partition, check_split_entries, check_split_rows,
    edge_case_suite,
};

#[test]
fn empty_matrix_yields_no_ranges() {
    let indptr = vec![0usize];
    for parts in [1, 2, 8] {
        let ranges = nnz_balanced_ranges(&indptr, parts);
        assert!(ranges.is_empty(), "parts={parts}: {ranges:?}");
        assert!(check_entry_partition("empty", &indptr, parts, &ranges).is_empty());
    }
    assert!(even_ranges(0, 4).is_empty());
    assert!(check_row_partition("empty", 0, 4, &even_ranges(0, 4), true).is_empty());
}

#[test]
fn all_empty_rows_still_cover_every_row() {
    // 6 rows, nnz = 0: entry balancing has nothing to balance, but every row
    // must still be owned by exactly one range.
    let indptr = vec![0usize; 7];
    for parts in [1, 3, 6, 9] {
        let ranges = nnz_balanced_ranges(&indptr, parts);
        let diags = check_entry_partition("all-empty", &indptr, parts, &ranges);
        assert!(diags.is_empty(), "parts={parts}: {diags:?}");
        assert!(check_split_entries("all-empty", &indptr, &ranges).is_empty());
        assert_eq!(ranges.first().map(|r| r.start), Some(0));
        assert_eq!(ranges.last().map(|r| r.end), Some(6));
    }
}

#[test]
fn more_parts_than_rows_never_produces_empty_ranges() {
    for (n, parts) in [(1usize, 8usize), (2, 100), (3, 64), (5, 6)] {
        let ranges = even_ranges(n, parts);
        assert!(ranges.len() <= n, "n={n} parts={parts}: {ranges:?}");
        let diags = check_row_partition("parts>rows", n, parts, &ranges, true);
        assert!(diags.is_empty(), "n={n} parts={parts}: {diags:?}");
        assert!(check_split_rows("parts>rows", n, 2, &ranges).is_empty());
    }
}

#[test]
fn single_massive_row_is_isolated_not_split() {
    // One row holds 10_000 of 10_001 entries. Entry balancing cannot split a
    // row, so the best it can do is isolate it — and the verifier only
    // demands structural invariants, not balance.
    let indptr = vec![0usize, 10_000, 10_000, 10_000, 10_001];
    for parts in [1, 2, 4] {
        let ranges = nnz_balanced_ranges(&indptr, parts);
        let diags = check_entry_partition("massive-row", &indptr, parts, &ranges);
        assert!(diags.is_empty(), "parts={parts}: {diags:?}");
        assert!(check_split_entries("massive-row", &indptr, &ranges).is_empty());
    }
    // With 2+ parts the massive row's range must not also absorb the tail
    // row that carries the remaining entry.
    let ranges = nnz_balanced_ranges(&indptr, 2);
    assert!(ranges.len() >= 2, "{ranges:?}");
}

#[test]
fn packaged_edge_case_suite_is_clean() {
    let report = edge_case_suite();
    assert!(report.cases >= 15, "suite shrank: {} cases", report.cases);
    assert!(report.diags.is_empty(), "{:?}", report.diags);
}
