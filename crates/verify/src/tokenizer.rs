//! A small token-level scanner for Rust source.
//!
//! `ses-lint`'s rules originally matched line regexes, which miss split
//! constructs (`.unwrap\n()`), false-positive inside identifiers, and can't
//! distinguish a lifetime from a char literal. This module lexes source into
//! a flat token stream — identifiers, lifetimes, numbers, strings, chars,
//! punctuation, comments — with line positions, so rules can match token
//! *sequences* instead of text.
//!
//! Deliberately not a full Rust lexer: no keyword table (keywords are
//! `Ident` tokens), single-character punctuation (rules match `!` `(` `.`
//! individually), and no token for whitespace. It does handle the lexical
//! constructs that break naive scanners: nested block comments, raw strings
//! (`r#"…"#`), byte/raw-byte strings, char escapes, lifetimes vs char
//! literals, and numeric literals with type suffixes (`1.0f64`, `0xFFu32`),
//! which is exactly what the lint rules need.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `as`, `unsafe`, `f64`).
    Ident,
    /// Lifetime (`'a`, `'static`), without the quote in `text`.
    Lifetime,
    /// Numeric literal, including any type suffix (`1.0e-3f64`).
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`.`, `!`, `(`, `:` …).
    Punct,
    /// Line or block comment, entire text including delimiters.
    Comment,
}

/// One lexed token with its position (0-based line, 0-based column of the
/// first character).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text (for `Lifetime`, without the leading `'`).
    pub text: String,
    /// 0-based source line of the token's first character.
    pub line: usize,
    /// 0-based column of the token's first character.
    pub col: usize,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: usize,
    col: usize,
    out: Vec<Tok>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn emit(&mut self, kind: TokKind, start: usize, line: usize, col: usize) {
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.out.push(Tok {
            kind,
            text,
            line,
            col,
        });
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }

    fn line_comment(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        self.take_while(|b| b != b'\n');
        self.emit(TokKind::Comment, start, line, col);
    }

    fn block_comment(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.emit(TokKind::Comment, start, line, col);
    }

    /// Consumes a quoted string body (opening quote already consumed),
    /// honouring backslash escapes.
    fn string_body(&mut self) {
        loop {
            match self.bump() {
                Some(b'\\') => {
                    self.bump();
                }
                Some(b'"') | None => break,
                Some(_) => {}
            }
        }
    }

    /// Consumes a raw-string body starting at the `#`s or quote (the `r`
    /// prefix is already consumed). Returns false if it wasn't a raw string
    /// after all (e.g. a raw identifier `r#match`).
    fn raw_string_body(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some(b'"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump(); // the hashes and the opening quote
        }
        loop {
            match self.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return true;
                    }
                }
                None => return true,
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) {
        let (start, line, col) = (self.i, self.line, self.col);
        self.bump();
        loop {
            match self.peek(0) {
                Some(b) if is_ident_continue(b) => {
                    let at_exponent = (b == b'e' || b == b'E')
                        && self
                            .peek(1)
                            .is_some_and(|s| s == b'+' || s == b'-' || s.is_ascii_digit());
                    self.bump();
                    if at_exponent && self.peek(0).is_some_and(|s| s == b'+' || s == b'-') {
                        self.bump();
                    }
                }
                // A dot continues the number only when followed by a digit
                // (so `0..n` stays three tokens and `1.5` stays one).
                Some(b'.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    self.bump();
                }
                _ => break,
            }
        }
        self.emit(TokKind::Number, start, line, col);
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(b) = self.peek(0) {
            let (start, line, col) = (self.i, self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.bump();
                    self.string_body();
                    self.emit(TokKind::Str, start, line, col);
                }
                b'r' if matches!(self.peek(1), Some(b'"') | Some(b'#')) => {
                    self.bump(); // 'r'
                    if self.raw_string_body() {
                        self.emit(TokKind::Str, start, line, col);
                    } else {
                        // raw identifier: r#ident
                        if self.peek(0) == Some(b'#') {
                            self.bump();
                        }
                        self.take_while(is_ident_continue);
                        self.emit(TokKind::Ident, start, line, col);
                    }
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.bump();
                    self.bump();
                    self.string_body();
                    self.emit(TokKind::Str, start, line, col);
                }
                b'b' if self.peek(1) == Some(b'r')
                    && matches!(self.peek(2), Some(b'"') | Some(b'#')) =>
                {
                    self.bump();
                    self.bump();
                    if self.raw_string_body() {
                        self.emit(TokKind::Str, start, line, col);
                    } else {
                        self.take_while(is_ident_continue);
                        self.emit(TokKind::Ident, start, line, col);
                    }
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.bump();
                    self.bump();
                    if self.peek(0) == Some(b'\\') {
                        self.bump();
                    }
                    self.bump(); // the char
                    if self.peek(0) == Some(b'\'') {
                        self.bump();
                    }
                    self.emit(TokKind::Char, start, line, col);
                }
                b'\'' => {
                    // Lifetime (`'a` not followed by a closing quote) or
                    // char literal (`'a'`, `'\n'`).
                    let is_lifetime = self.peek(1).is_some_and(is_ident_start) && {
                        let mut j = 2;
                        while self.peek(j).is_some_and(is_ident_continue) {
                            j += 1;
                        }
                        self.peek(j) != Some(b'\'')
                    };
                    if is_lifetime {
                        self.bump(); // quote, excluded from text
                        let (s2, l2, c2) = (self.i, line, col);
                        self.take_while(is_ident_continue);
                        self.emit(TokKind::Lifetime, s2, l2, c2);
                    } else {
                        self.bump();
                        if self.peek(0) == Some(b'\\') {
                            self.bump();
                            self.bump();
                        } else {
                            self.bump();
                        }
                        // Unicode chars span several bytes; eat to the quote.
                        while let Some(nb) = self.peek(0) {
                            if nb == b'\'' {
                                break;
                            }
                            self.bump();
                        }
                        self.bump(); // closing quote
                        self.emit(TokKind::Char, start, line, col);
                    }
                }
                _ if is_ident_start(b) => {
                    self.take_while(is_ident_continue);
                    self.emit(TokKind::Ident, start, line, col);
                }
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.bump();
                    self.emit(TokKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }
}

/// Lexes `src` into a flat token stream. Never fails: unrecognised bytes
/// become single-character [`TokKind::Punct`] tokens.
pub fn tokenize(src: &str) -> Vec<Tok> {
    Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 0,
        col: 0,
        out: Vec::new(),
    }
    .run()
}

/// Lexes `src` and drops comment tokens — the stream lint rules match on.
pub fn code_tokens(src: &str) -> Vec<Tok> {
    tokenize(src)
        .into_iter()
        .filter(|t| t.kind != TokKind::Comment)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let ts = kinds("let x2 = 1.5e-3f64 + 0xFFu32;");
        assert_eq!(ts[0], (TokKind::Ident, "let".to_string()));
        assert_eq!(ts[1], (TokKind::Ident, "x2".to_string()));
        assert_eq!(ts[2], (TokKind::Punct, "=".to_string()));
        assert_eq!(ts[3], (TokKind::Number, "1.5e-3f64".to_string()));
        assert_eq!(ts[5], (TokKind::Number, "0xFFu32".to_string()));
    }

    #[test]
    fn range_dots_do_not_join_numbers() {
        let ts = kinds("0..n");
        assert_eq!(ts[0], (TokKind::Number, "0".to_string()));
        assert_eq!(ts[1], (TokKind::Punct, ".".to_string()));
        assert_eq!(ts[2], (TokKind::Punct, ".".to_string()));
        assert_eq!(ts[3], (TokKind::Ident, "n".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Char && t == "'x'"));
        assert!(ts.iter().any(|(k, t)| *k == TokKind::Char && t == "'\\n'"));
    }

    #[test]
    fn strings_hide_their_contents_from_matching() {
        // ".unwrap(" inside a string must lex as one Str token.
        let ts = kinds(r#"let msg = "call .unwrap() later";"#);
        assert!(ts
            .iter()
            .all(|(k, t)| *k == TokKind::Str || !t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let ts = kinds("r#\"a \"quoted\" b\"# /* outer /* inner */ still */ x");
        assert_eq!(ts[0].0, TokKind::Str);
        assert_eq!(ts[1].0, TokKind::Comment);
        assert_eq!(ts[2], (TokKind::Ident, "x".to_string()));
    }

    #[test]
    fn split_unwrap_still_matches_as_token_sequence() {
        let src = "v\n  .unwrap\n  ()";
        let ts = code_tokens(src);
        let seq: Vec<&str> = ts.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(seq, vec!["v", ".", "unwrap", "(", ")"]);
        assert_eq!(ts[2].line, 1); // `unwrap` sits on line 1 (0-based)
    }

    #[test]
    fn line_positions_are_zero_based() {
        let ts = tokenize("a\nbb ccc");
        assert_eq!((ts[0].line, ts[0].col), (0, 0));
        assert_eq!((ts[1].line, ts[1].col), (1, 0));
        assert_eq!((ts[2].line, ts[2].col), (1, 3));
    }
}
