//! Dry-run trace builder: records a [`TapeIr`] from shape arithmetic alone.
//!
//! [`IrBuilder`] mirrors the `Tape` recording API at the IR level — same op
//! names, same operand order, same needs-grad propagation — but never
//! allocates a matrix or executes a kernel. A model's wiring can therefore
//! be traced and [`verify_tape`](crate::tape_check::verify_tape)'d in CI in
//! microseconds, before any data exists.
//!
//! Checked constructors ([`IrBuilder::unary`]/[`IrBuilder::binary`]/the
//! sparse helpers) run shape inference at build time and refuse impossible
//! traces; [`IrBuilder::raw`] bypasses every check so tests and seeded-defect
//! fixtures can construct exactly the malformed tapes the verifier must
//! catch.

use ses_tensor::{IrMeta, IrNode, TapeIr};

use crate::tape_check::infer_shape;

/// Builds a [`TapeIr`] node by node. See the module docs.
#[derive(Debug, Default)]
pub struct IrBuilder {
    nodes: Vec<IrNode>,
}

impl IrBuilder {
    /// New empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(
        &mut self,
        op: &str,
        parents: Vec<usize>,
        shape: (usize, usize),
        needs_grad: bool,
        has_backward: bool,
        meta: IrMeta,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(IrNode {
            id,
            op: op.to_string(),
            parents,
            shape,
            needs_grad,
            has_backward,
            params: Vec::new(),
            meta,
        });
        id
    }

    /// Records a trainable parameter leaf.
    pub fn leaf(&mut self, rows: usize, cols: usize) -> usize {
        self.push("leaf", Vec::new(), (rows, cols), true, true, IrMeta::None)
    }

    /// Records a constant leaf (no gradient).
    pub fn constant(&mut self, rows: usize, cols: usize) -> usize {
        self.push("leaf", Vec::new(), (rows, cols), false, true, IrMeta::None)
    }

    fn checked(&mut self, op: &str, parents: Vec<usize>, meta: IrMeta) -> Result<usize, String> {
        let mut pshapes = Vec::with_capacity(parents.len());
        for &p in &parents {
            let node = self
                .nodes
                .get(p)
                .ok_or_else(|| format!("`{op}`: parent {p} not recorded yet"))?;
            pshapes.push(node.shape);
        }
        let shape = infer_shape(op, &pshapes, &meta)?;
        let needs_grad = parents.iter().any(|&p| self.nodes[p].needs_grad);
        Ok(self.push(op, parents, shape, needs_grad, true, meta))
    }

    /// Records a shape-checked single-operand op (`relu`, `mean_all`, …).
    pub fn unary(&mut self, op: &str, a: usize) -> Result<usize, String> {
        self.checked(op, vec![a], IrMeta::None)
    }

    /// Records a shape-checked two-operand op (`add`, `matmul`, …).
    pub fn binary(&mut self, op: &str, a: usize, b: usize) -> Result<usize, String> {
        self.checked(op, vec![a, b], IrMeta::None)
    }

    /// Records a sparse×dense product over an `rows×cols` CSR structure with
    /// `nnz` stored entries.
    pub fn spmm(
        &mut self,
        rows: usize,
        cols: usize,
        nnz: usize,
        values: usize,
        dense: usize,
    ) -> Result<usize, String> {
        self.checked(
            "spmm",
            vec![values, dense],
            IrMeta::Sparse { rows, cols, nnz },
        )
    }

    /// Records a per-destination edge softmax over the same structure shape.
    pub fn edge_softmax(
        &mut self,
        rows: usize,
        cols: usize,
        nnz: usize,
        scores: usize,
    ) -> Result<usize, String> {
        self.checked(
            "edge_softmax",
            vec![scores],
            IrMeta::Sparse { rows, cols, nnz },
        )
    }

    /// Records a row gather of `idx_len` rows with maximum index `idx_max`.
    pub fn gather_rows(
        &mut self,
        src: usize,
        idx_len: usize,
        idx_max: Option<usize>,
    ) -> Result<usize, String> {
        self.checked(
            "gather_rows",
            vec![src],
            IrMeta::Gather { idx_len, idx_max },
        )
    }

    /// Records a masked NLL loss over log-probabilities.
    pub fn nll_masked(
        &mut self,
        logp: usize,
        labels_len: usize,
        idx_len: usize,
        idx_max: Option<usize>,
        label_max: Option<usize>,
    ) -> Result<usize, String> {
        self.checked(
            "nll_masked",
            vec![logp],
            IrMeta::Nll {
                labels_len,
                idx_len,
                idx_max,
                label_max,
            },
        )
    }

    /// Records a fixed-mask dropout with `mask_len` mask entries.
    pub fn dropout(&mut self, src: usize, mask_len: usize) -> Result<usize, String> {
        self.checked("dropout", vec![src], IrMeta::Mask { len: mask_len })
    }

    /// Records a node with **no checks at all** — declared shape, grad flag
    /// and backward flag are taken at face value. Fixture escape hatch for
    /// building deliberately broken tapes.
    pub fn raw(
        &mut self,
        op: &str,
        parents: Vec<usize>,
        shape: (usize, usize),
        needs_grad: bool,
        has_backward: bool,
    ) -> usize {
        self.push(op, parents, shape, needs_grad, has_backward, IrMeta::None)
    }

    /// Finishes the trace.
    pub fn finish(self) -> TapeIr {
        TapeIr { nodes: self.nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_propagates_needs_grad_like_the_tape() {
        let mut b = IrBuilder::new();
        let x = b.constant(4, 3);
        let w = b.leaf(3, 2);
        let h = b.binary("matmul", x, w).expect("matmul");
        let r = b.unary("relu", h).expect("relu");
        let ir = b.finish();
        assert!(!ir.nodes[x].needs_grad);
        assert!(ir.nodes[h].needs_grad);
        assert!(ir.nodes[r].needs_grad);
        assert_eq!(ir.nodes[h].shape, (4, 2));
    }

    #[test]
    fn builder_rejects_impossible_wiring_eagerly() {
        let mut b = IrBuilder::new();
        let x = b.leaf(2, 3);
        let y = b.leaf(2, 3);
        assert!(b.binary("matmul", x, y).is_err());
        assert!(b.unary("relu", 99).is_err());
        assert!(b.spmm(3, 3, 5, x, y).is_err()); // values not 5×1
    }

    #[test]
    fn sparse_helpers_carry_meta() {
        let mut b = IrBuilder::new();
        let vals = b.leaf(5, 1);
        let x = b.constant(3, 4);
        let att = b.edge_softmax(3, 3, 5, vals).expect("edge_softmax");
        let h = b.spmm(3, 3, 5, att, x).expect("spmm");
        let ir = b.finish();
        assert_eq!(ir.nodes[h].shape, (3, 4));
        assert_eq!(
            ir.nodes[att].meta,
            ses_tensor::IrMeta::Sparse {
                rows: 3,
                cols: 3,
                nnz: 5
            }
        );
    }
}
