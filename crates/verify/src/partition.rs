//! Engine 2: the parallel-partition safety checker.
//!
//! The deterministic parallel layer (`ses_tensor::par`) promises that its
//! partitions are contiguous, disjoint, fully covering, monotone and (for
//! [`even_ranges`]) balanced, and that the `split_*_mut` carvings hand every
//! buffer element to exactly one worker. Those invariants are what make the
//! kernels bit-identical at any thread count — so this module proves them,
//! three ways:
//!
//! * [`check_row_partition`] / [`check_entry_partition`] — invariant checks
//!   over any partitioner output, usable against third-party or deliberately
//!   broken partitioners (see `selfcheck`);
//! * [`check_split_rows`] / [`check_split_entries`] — observational proofs:
//!   write a distinct marker through every carved `&mut` slice, then verify
//!   each buffer element holds exactly its owner's marker (coverage and
//!   disjointness witnessed in memory, not just in range arithmetic);
//! * [`exhaustive_small_model`] / [`exhaustive_csr_model`] — run the real
//!   partitioners over **every** shape up to a bound (all `n × parts` grids,
//!   all degree sequences), [`edge_case_suite`] for the known-nasty inputs,
//!   and [`beyond_bound_spotchecks`] for shapes near `usize::MAX` where the
//!   arithmetic itself (quantile products, `div_ceil`) is the risk.
//!
//! Property tests in `tests/` extend the exhaustive bound with randomised
//! shapes via the vendored proptest stub.

use std::ops::Range;

use ses_tensor::par::{even_ranges, nnz_balanced_ranges, split_entries_mut, split_rows_mut};

use crate::{record_diags, Diag};

/// Outcome of a model-checking sweep: how many partitioner invocations were
/// checked, and every finding.
#[derive(Debug, Default)]
pub struct PartitionReport {
    /// Partitioner invocations checked.
    pub cases: u64,
    /// All findings (empty on a clean sweep).
    pub diags: Vec<Diag>,
}

impl PartitionReport {
    fn absorb(&mut self, diags: Vec<Diag>) {
        self.cases += 1;
        self.diags.extend(diags);
    }

    pub(crate) fn merge(&mut self, other: PartitionReport) {
        self.cases += other.cases;
        self.diags.extend(other.diags);
    }

    fn finish(self) -> Self {
        ses_obs::metrics::VERIFY_CHECKS.add(self.cases);
        record_diags(&self.diags);
        self
    }
}

fn err(check: &'static str, subject: &str, msg: String) -> Diag {
    Diag::error("partition", check, subject.to_string(), msg)
}

/// Checks the structural invariants of a row partition of `0..n` into at
/// most `parts` ranges: non-empty ranges, coverage of exactly `0..n`,
/// contiguity (which implies disjointness and monotonicity for ranges),
/// range count bounded by `min(parts, n)`, and — when `require_balance` —
/// sizes differing by at most one.
pub fn check_row_partition(
    subject: &str,
    n: usize,
    parts: usize,
    ranges: &[Range<usize>],
    require_balance: bool,
) -> Vec<Diag> {
    let mut diags = Vec::new();
    if n == 0 {
        if !ranges.is_empty() {
            diags.push(err(
                "coverage",
                subject,
                format!("empty input must yield no ranges, got {}", ranges.len()),
            ));
        }
        return diags;
    }
    if ranges.is_empty() {
        diags.push(err(
            "coverage",
            subject,
            format!("no ranges returned for {n} rows"),
        ));
        return diags;
    }
    if ranges.len() > parts.max(1).min(n) {
        diags.push(err(
            "coverage",
            subject,
            format!(
                "{} ranges exceed the cap min(parts, n) = {}",
                ranges.len(),
                parts.max(1).min(n)
            ),
        ));
    }
    for r in ranges {
        if r.start >= r.end {
            diags.push(err(
                "monotonicity",
                subject,
                format!("empty or reversed range {}..{}", r.start, r.end),
            ));
        }
    }
    if let Some(first) = ranges.first() {
        if first.start != 0 {
            diags.push(err(
                "coverage",
                subject,
                format!("first range starts at {} instead of 0", first.start),
            ));
        }
    }
    if let Some(last) = ranges.last() {
        if last.end != n {
            diags.push(err(
                "coverage",
                subject,
                format!("last range ends at {} instead of {n}", last.end),
            ));
        }
    }
    for w in ranges.windows(2) {
        if w[0].end != w[1].start {
            let check = if w[0].end > w[1].start {
                "disjointness"
            } else {
                "coverage"
            };
            diags.push(err(
                check,
                subject,
                format!(
                    "adjacent ranges ..{} and {}.. {}",
                    w[0].end,
                    w[1].start,
                    if w[0].end > w[1].start {
                        "overlap"
                    } else {
                        "leave a gap"
                    }
                ),
            ));
        }
    }
    if require_balance && diags.is_empty() {
        let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
        let mn = sizes.iter().copied().min().unwrap_or(0);
        let mx = sizes.iter().copied().max().unwrap_or(0);
        if mx - mn > 1 {
            diags.push(err(
                "balance",
                subject,
                format!("range sizes vary from {mn} to {mx}; promised max spread is 1"),
            ));
        }
    }
    diags
}

/// Checks a CSR row partition produced by [`nnz_balanced_ranges`]: the input
/// `indptr` must be a valid (non-empty, monotone) CSR index array, and the
/// ranges must satisfy every structural invariant of [`check_row_partition`]
/// over its `indptr.len() - 1` rows (balance is *not* required — a single
/// massive row legitimately unbalances entry counts).
pub fn check_entry_partition(
    subject: &str,
    indptr: &[usize],
    parts: usize,
    ranges: &[Range<usize>],
) -> Vec<Diag> {
    let Some((&last, _)) = indptr.split_last() else {
        return vec![err(
            "input",
            subject,
            "indptr must be non-empty".to_string(),
        )];
    };
    if indptr.windows(2).any(|w| w[0] > w[1]) {
        return vec![err(
            "input",
            subject,
            "indptr must be non-decreasing".to_string(),
        )];
    }
    let _ = last;
    check_row_partition(subject, indptr.len() - 1, parts, ranges, false)
}

/// Observational proof for [`split_rows_mut`]: carve a marker buffer, write
/// each slice's index through it, then verify every element of every row
/// holds exactly its owner's marker.
///
/// Precondition: `ranges` already passed [`check_row_partition`]
/// (`split_rows_mut` asserts on structurally invalid ranges).
pub fn check_split_rows(
    subject: &str,
    n: usize,
    cols: usize,
    ranges: &[Range<usize>],
) -> Vec<Diag> {
    let mut buf = vec![0.0f32; n * cols];
    {
        let slices = split_rows_mut(&mut buf, cols, ranges);
        for (k, slice) in slices.into_iter().enumerate() {
            let marker = (k + 1) as f32;
            for v in slice.iter_mut() {
                *v = marker;
            }
        }
    }
    for (k, r) in ranges.iter().enumerate() {
        let marker = (k + 1) as f32;
        for row in r.clone() {
            for c in 0..cols {
                if buf[row * cols + c] != marker {
                    return vec![err(
                        "disjointness",
                        subject,
                        format!(
                            "element ({row}, {c}) holds marker {} instead of its \
                             owner block {k}'s marker {marker}",
                            buf[row * cols + c]
                        ),
                    )];
                }
            }
        }
    }
    Vec::new()
}

/// Observational proof for [`split_entries_mut`], analogous to
/// [`check_split_rows`] but over the per-entry buffer addressed by `indptr`.
pub fn check_split_entries(subject: &str, indptr: &[usize], ranges: &[Range<usize>]) -> Vec<Diag> {
    let n_rows = indptr.len() - 1;
    let mut buf = vec![0.0f32; indptr[n_rows]];
    {
        let slices = split_entries_mut(&mut buf, indptr, ranges);
        for (k, slice) in slices.into_iter().enumerate() {
            let marker = (k + 1) as f32;
            for v in slice.iter_mut() {
                *v = marker;
            }
        }
    }
    for (k, r) in ranges.iter().enumerate() {
        let marker = (k + 1) as f32;
        let (lo, hi) = (indptr[r.start], indptr[r.end]);
        for (off, &got) in buf[lo..hi].iter().enumerate() {
            if got != marker {
                return vec![err(
                    "disjointness",
                    subject,
                    format!(
                        "entry {} holds marker {got} instead of its owner block \
                         {k}'s marker {marker}",
                        lo + off
                    ),
                )];
            }
        }
    }
    Vec::new()
}

/// Exhaustively model-checks [`even_ranges`] (plus the [`split_rows_mut`]
/// carving) over every `(n, parts)` in `0..=max_n × 1..=max_parts`.
pub fn exhaustive_small_model(max_n: usize, max_parts: usize) -> PartitionReport {
    let mut report = PartitionReport::default();
    for n in 0..=max_n {
        for parts in 1..=max_parts {
            let subject = format!("even_ranges(n={n}, parts={parts})");
            let ranges = even_ranges(n, parts);
            let diags = check_row_partition(&subject, n, parts, &ranges, true);
            let clean = diags.is_empty();
            report.absorb(diags);
            if clean && n > 0 {
                report
                    .diags
                    .extend(check_split_rows(&subject, n, 3, &ranges));
            }
        }
    }
    report.finish()
}

/// Exhaustively model-checks [`nnz_balanced_ranges`] (plus the
/// [`split_entries_mut`] carving) over **every** degree sequence of length
/// `0..=max_rows` with per-row degree `0..=max_deg`, for every
/// `parts in 1..=max_parts`.
pub fn exhaustive_csr_model(max_rows: usize, max_deg: usize, max_parts: usize) -> PartitionReport {
    let mut report = PartitionReport::default();
    let base = max_deg + 1;
    for rows in 0..=max_rows {
        let seqs = base.pow(rows as u32);
        for code in 0..seqs {
            let mut indptr = Vec::with_capacity(rows + 1);
            indptr.push(0usize);
            let mut c = code;
            for _ in 0..rows {
                let deg = c % base;
                c /= base;
                let last = *indptr.last().unwrap_or(&0);
                indptr.push(last + deg);
            }
            for parts in 1..=max_parts {
                let subject = format!("nnz_balanced_ranges(indptr={indptr:?}, parts={parts})");
                let ranges = nnz_balanced_ranges(&indptr, parts);
                let diags = check_entry_partition(&subject, &indptr, parts, &ranges);
                let clean = diags.is_empty();
                report.absorb(diags);
                if clean && rows > 0 {
                    report
                        .diags
                        .extend(check_split_entries(&subject, &indptr, &ranges));
                }
            }
        }
    }
    report.finish()
}

/// The known-nasty partitioner inputs, checked directly: the empty matrix,
/// all-empty rows, more parts than rows, zero stored entries, and a single
/// massive row that absorbs the whole entry budget.
pub fn edge_case_suite() -> PartitionReport {
    let mut report = PartitionReport::default();

    // Empty matrix: indptr = [0], zero rows.
    let empty = vec![0usize];
    let r = nnz_balanced_ranges(&empty, 4);
    report.absorb(check_entry_partition(
        "nnz_balanced_ranges(indptr=[0], parts=4)",
        &empty,
        4,
        &r,
    ));
    report.absorb(check_row_partition(
        "even_ranges(n=0, parts=4)",
        0,
        4,
        &even_ranges(0, 4),
        true,
    ));

    // All-empty rows / nnz = 0 with rows present.
    let all_empty = vec![0usize; 7];
    for parts in [1, 3, 6, 9] {
        let subject = format!("nnz_balanced_ranges(indptr=[0; 7], parts={parts})");
        let ranges = nnz_balanced_ranges(&all_empty, parts);
        let diags = check_entry_partition(&subject, &all_empty, parts, &ranges);
        let clean = diags.is_empty();
        report.absorb(diags);
        if clean {
            report
                .diags
                .extend(check_split_entries(&subject, &all_empty, &ranges));
        }
    }

    // More parts than rows.
    for (n, parts) in [(1usize, 8usize), (3, 64), (5, 6)] {
        let subject = format!("even_ranges(n={n}, parts={parts})");
        let ranges = even_ranges(n, parts);
        let diags = check_row_partition(&subject, n, parts, &ranges, true);
        let clean = diags.is_empty();
        report.absorb(diags);
        if clean {
            report
                .diags
                .extend(check_split_rows(&subject, n, 2, &ranges));
        }
    }

    // Single massive row dominating the entry count (with and without
    // trailing empties), at a size where the marker proof still fits in
    // memory...
    let massive = vec![0usize, 10_000, 10_000, 10_000, 10_001];
    for parts in [1, 2, 4] {
        let subject = format!("nnz_balanced_ranges(indptr={massive:?}, parts={parts})");
        let ranges = nnz_balanced_ranges(&massive, parts);
        let diags = check_entry_partition(&subject, &massive, parts, &ranges);
        let clean = diags.is_empty();
        report.absorb(diags);
        if clean {
            report
                .diags
                .extend(check_split_entries(&subject, &massive, &ranges));
        }
    }
    // ...and at a size where only the range arithmetic can be checked.
    let colossal = vec![0usize, 1 << 50, 1 << 50, (1 << 50) + 3];
    for parts in [1, 2, 3, 5] {
        let subject = format!("nnz_balanced_ranges(indptr={colossal:?}, parts={parts})");
        let ranges = nnz_balanced_ranges(&colossal, parts);
        report.absorb(check_entry_partition(&subject, &colossal, parts, &ranges));
    }

    report.finish()
}

/// Spot checks beyond any feasible exhaustive bound: shapes near
/// `usize::MAX`, where the quantile products and `div_ceil` arithmetic
/// inside the partitioners — not the partition logic — are the risk. (The
/// `nnz_balanced_ranges` quantile runs in `u128` precisely because this
/// sweep overflows a `usize` product.)
pub fn beyond_bound_spotchecks() -> PartitionReport {
    let mut report = PartitionReport::default();
    let huge = usize::MAX;
    for n in [u32::MAX as usize, huge / 2, huge - 1, huge] {
        for parts in [1usize, 2, 3, 7, 64, 1023] {
            let subject = format!("even_ranges(n={n}, parts={parts})");
            let ranges = even_ranges(n, parts);
            report.absorb(check_row_partition(&subject, n, parts, &ranges, true));
        }
    }
    let third = huge / 3;
    let indptrs: Vec<Vec<usize>> = vec![
        vec![0, third, 2 * third, huge - 4],
        vec![0, huge / 2, huge / 2, huge / 2, huge - 1],
        vec![0, 1, huge / 2, huge / 2 + 1, huge - 7],
    ];
    for indptr in &indptrs {
        for parts in [1usize, 2, 3, 4] {
            let subject = format!(
                "nnz_balanced_ranges(indptr=~usize::MAX scale ({} rows), parts={parts})",
                indptr.len() - 1
            );
            let ranges = nnz_balanced_ranges(indptr, parts);
            report.absorb(check_entry_partition(&subject, indptr, parts, &ranges));
        }
    }
    report.finish()
}

/// Regression-lock for the `run_isolated` first-task-panic edge case: the
/// *first* task of a multi-task batch panics on the calling thread — inside
/// the caller's own chunk, before any spawned worker is joined — and the
/// `std::thread::scope` inside `run_tasks` must still run **and join** every
/// spawned chunk to completion before the payload reaches `run_isolated`'s
/// catch and the op degrades to serial. A regression that let the panic
/// escape the scope early (or leaked still-running workers into the serial
/// rerun) would corrupt the degraded recompute; this case pins the
/// join-all-then-degrade ordering with per-task completion markers
/// snapshotted at the instant the serial fallback begins.
pub fn isolation_first_task_panic() -> PartitionReport {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use ses_tensor::par::{isolation_enabled, run_isolated, run_tasks, set_isolation_enabled};

    const CHECK: &str = "isolation-first-task-panic";
    const TASKS: usize = 6;
    const THREADS: usize = 3;
    let subject = format!("run_isolated(first-task-panic, threads={THREADS}, tasks={TASKS})");

    let mut report = PartitionReport::default();
    let mut diags = Vec::new();

    // Force both paths under test on, restoring the knobs afterwards so the
    // sweep composes with whatever configuration the caller runs under.
    let isolation_was = isolation_enabled();
    set_isolation_enabled(true);
    ses_obs::set_enabled_override(Some(true));
    let degraded_before = ses_obs::metrics::KERNEL_PANIC_DEGRADED.get();

    // One completion marker per task. With threads=3 and 6 tasks the chunk
    // layout is caller=[0,1], worker0=[2,3], worker1=[4,5]: task 0's panic
    // aborts the caller's chunk (task 1 never starts), while every spawned
    // task must still finish before degradation begins.
    let ran: Vec<AtomicUsize> = (0..TASKS).map(|_| AtomicUsize::new(0)).collect();
    // Marker snapshot taken at the instant the serial fallback starts.
    let at_degrade: std::sync::Mutex<Option<Vec<usize>>> = std::sync::Mutex::new(None);

    let result: Vec<usize> = run_isolated(
        "verify.first_task_panic",
        THREADS,
        || {
            run_tasks(
                THREADS,
                (0..TASKS)
                    .map(|i| {
                        let ran = &ran;
                        move || {
                            if i == 0 {
                                // lint:allow(no-unwrap): the seeded fault under test
                                panic!(
                                    "ses-verify: seeded first-task panic \
                                     (expected; exercising run_isolated join-all)"
                                );
                            }
                            // ordering: markers are read back across the scope join
                            ran[i].fetch_add(1, Ordering::SeqCst);
                            i
                        }
                    })
                    .collect(),
            )
        },
        || {
            // The scope join happens-before the catch arm, so every spawned
            // task's marker store is visible here.
            let snap: Vec<usize> = ran
                .iter()
                // ordering: scope join already synchronised the stores
                .map(|m| m.load(Ordering::SeqCst))
                .collect();
            if let Ok(mut slot) = at_degrade.lock() {
                *slot = Some(snap);
            }
            (0..TASKS).collect()
        },
    );

    let degraded_delta = ses_obs::metrics::KERNEL_PANIC_DEGRADED.get() - degraded_before;
    ses_obs::set_enabled_override(None);
    set_isolation_enabled(isolation_was);

    match at_degrade.into_inner() {
        Ok(Some(snap)) => {
            for (i, &count) in snap.iter().enumerate().skip(2) {
                if count != 1 {
                    diags.push(err(
                        CHECK,
                        &subject,
                        format!(
                            "spawned task {i} had run {count} times when degradation began; \
                             run_tasks must join every worker exactly once before the panic \
                             escapes the scope"
                        ),
                    ));
                }
            }
            if snap[1] != 0 {
                diags.push(err(
                    CHECK,
                    &subject,
                    format!(
                        "task 1 ran {} time(s) before degradation; the caller's chunk must \
                         stop at the first panicking task",
                        snap[1]
                    ),
                ));
            }
        }
        _ => diags.push(err(
            CHECK,
            &subject,
            "serial fallback never ran: the panic escaped run_isolated or the parallel \
             attempt spuriously succeeded"
                .to_string(),
        )),
    }
    if degraded_delta != 1 {
        diags.push(err(
            CHECK,
            &subject,
            format!("expected exactly one KERNEL_PANIC_DEGRADED increment, saw {degraded_delta}"),
        ));
    }
    let expect: Vec<usize> = (0..TASKS).collect();
    if result != expect {
        diags.push(err(
            CHECK,
            &subject,
            format!("degraded serial rerun returned {result:?}, expected {expect:?}"),
        ));
    }
    report.absorb(diags);
    report.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    #[test]
    fn checker_accepts_real_partitioner_output() {
        let r = exhaustive_small_model(12, 8);
        assert!(r.cases >= 96);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn checker_rejects_overlap_gap_and_short_coverage() {
        let overlap = vec![0..3, 2..5];
        let ds = check_row_partition("fixture", 5, 2, &overlap, false);
        assert!(ds.iter().any(|d| d.check == "disjointness"), "{ds:?}");

        let gap = vec![0..2, 3..5];
        let ds = check_row_partition("fixture", 5, 2, &gap, false);
        assert!(ds.iter().any(|d| d.check == "coverage"), "{ds:?}");

        let ds = check_row_partition("fixture", 5, 2, std::slice::from_ref(&(0..4)), false);
        assert!(ds.iter().any(|d| d.check == "coverage"), "{ds:?}");

        let empty_range = vec![0..0, 0..5];
        let ds = check_row_partition("fixture", 5, 2, &empty_range, false);
        assert!(ds.iter().any(|d| d.check == "monotonicity"), "{ds:?}");

        assert!(ds.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn checker_rejects_imbalanced_even_split() {
        let lopsided = vec![0..4, 4..5];
        let ds = check_row_partition("fixture", 5, 2, &lopsided, true);
        assert!(ds.iter().any(|d| d.check == "balance"), "{ds:?}");
    }

    #[test]
    fn first_task_panic_joins_all_workers_before_degrading() {
        let r = isolation_first_task_panic();
        assert_eq!(r.cases, 1);
        assert!(r.diags.is_empty(), "{:?}", r.diags);
    }

    #[test]
    fn entry_checker_validates_its_input() {
        let ds = check_entry_partition("fixture", &[], 2, &[]);
        assert!(ds.iter().any(|d| d.check == "input"));
        let ds = check_entry_partition("fixture", &[0, 5, 3], 2, std::slice::from_ref(&(0..2)));
        assert!(ds.iter().any(|d| d.check == "input"));
    }
}
