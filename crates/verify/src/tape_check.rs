//! Engine 1: the static tape-IR verifier.
//!
//! Takes a [`TapeIr`] (exported from a real tape, or dry-run traced by
//! [`crate::builder::IrBuilder`]) and checks, without touching any values:
//!
//! * **topology** — ids are dense, every parent precedes its child (the flat
//!   arena invariant that `Tape::backward`'s reverse sweep relies on);
//! * **shape** — every op's declared output shape matches what its operand
//!   shapes (plus [`IrMeta`] side channels) imply, the same rules the runtime
//!   sanitizer enforces at registration;
//! * **backward coverage** — every gradient-bearing op has a backward rule,
//!   and gradient wiring is never silently cut (a node whose parent needs a
//!   gradient but which itself will not propagate one);
//! * **determinism** — every op is in the registry of ops whose reduction
//!   order is proven thread-count-independent (see `ses_tensor::par`'s
//!   determinism contract); unknown ops are rejected rather than assumed;
//! * **loss analysis** — given a loss node: its shape is scalar, every
//!   trainable leaf is backward-reachable from it, and `Unused`/`AfterLoss`
//!   leaks stay within an optional [`LeakBudget`] (the static mirror of
//!   `Tape::check_leak_budget`);
//! * **hygiene** — dead forward compute and duplicate subgraphs are flagged
//!   as warnings.

use std::collections::HashMap;

use ses_tensor::{IrMeta, LeakBudget, TapeIr};

use crate::{record_diags, Diag};

/// Options for [`verify_tape`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TapeCheckConfig {
    /// Node id of the loss; enables reachability/leak analysis.
    pub loss: Option<usize>,
    /// Leak budget applied when `loss` is set. `None` downgrades leak
    /// findings to warnings.
    pub leak_budget: Option<LeakBudget>,
}

/// Classification of an op's parallel execution behaviour, mirroring the
/// determinism contract documented in `ses_tensor::par`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetClass {
    /// Runs serially (or element-wise with one writer per output element):
    /// trivially order-independent.
    Serial,
    /// Runs on the parallel layer with partition geometry that is a pure
    /// function of the problem shape and block-ordered merges: proven
    /// bit-identical at any thread count.
    ParallelDeterministic,
}

/// The determinism class of a known op, `None` for ops outside the registry.
pub fn op_determinism(op: &str) -> Option<DetClass> {
    match op {
        // Kernels dispatched through ses_tensor::kernels on the parallel
        // layer; each partitions over output elements or merges per-block
        // partials in block order (par.rs determinism contract rules 1-2).
        "matmul" | "spmm" | "edge_softmax" => Some(DetClass::ParallelDeterministic),
        "leaf" | "add" | "sub" | "mul" | "scale" | "add_scalar" | "mul_scalar_var"
        | "transpose" | "add_row_broadcast" | "mul_col_broadcast" | "sigmoid" | "relu"
        | "leaky_relu" | "elu" | "tanh" | "sqrt_eps" | "log_eps" | "exp" | "abs"
        | "log_softmax_rows" | "nll_masked" | "gather_rows" | "concat_cols" | "concat_rows"
        | "sum_all" | "mean_all" | "row_sum" | "dropout" => Some(DetClass::Serial),
        _ => None,
    }
}

/// Statically recomputes the output shape of `op` from its operand shapes
/// and side-channel metadata. Errors describe the violated rule.
///
/// The rules mirror the runtime sanitizer's registration-time checks
/// (`san_same_shape`, `san_matmul_dims`, `san_spmm_dims`, …) so a tape that
/// passes here cannot trip a shape assertion at run time.
pub fn infer_shape(
    op: &str,
    parents: &[(usize, usize)],
    meta: &IrMeta,
) -> Result<(usize, usize), String> {
    let arity = |n: usize| -> Result<(), String> {
        if parents.len() == n {
            Ok(())
        } else {
            Err(format!(
                "`{op}` expects {n} operand(s), found {}",
                parents.len()
            ))
        }
    };
    match op {
        "leaf" => {
            arity(0)?;
            Err("`leaf` shape is declared, not inferred".to_string())
        }
        "add" | "sub" | "mul" => {
            arity(2)?;
            let (a, b) = (parents[0], parents[1]);
            if a == b {
                Ok(a)
            } else {
                Err(format!(
                    "element-wise `{op}` needs equal shapes, found {}×{} vs {}×{}",
                    a.0, a.1, b.0, b.1
                ))
            }
        }
        "scale" | "add_scalar" | "sigmoid" | "relu" | "leaky_relu" | "elu" | "tanh"
        | "sqrt_eps" | "log_eps" | "exp" | "abs" | "log_softmax_rows" => {
            arity(1)?;
            Ok(parents[0])
        }
        "mul_scalar_var" => {
            arity(2)?;
            let (s, m) = (parents[0], parents[1]);
            if s == (1, 1) {
                Ok(m)
            } else {
                Err(format!(
                    "`mul_scalar_var` scalar operand must be 1×1, found {}×{}",
                    s.0, s.1
                ))
            }
        }
        "matmul" => {
            arity(2)?;
            let (a, b) = (parents[0], parents[1]);
            if a.1 == b.0 {
                Ok((a.0, b.1))
            } else {
                Err(format!(
                    "`matmul` inner dims differ: {}×{} times {}×{}",
                    a.0, a.1, b.0, b.1
                ))
            }
        }
        "transpose" => {
            arity(1)?;
            Ok((parents[0].1, parents[0].0))
        }
        "add_row_broadcast" => {
            arity(2)?;
            let (m, bias) = (parents[0], parents[1]);
            if bias == (1, m.1) {
                Ok(m)
            } else {
                Err(format!(
                    "`add_row_broadcast` bias must be 1×{}, found {}×{}",
                    m.1, bias.0, bias.1
                ))
            }
        }
        "mul_col_broadcast" => {
            arity(2)?;
            let (m, s) = (parents[0], parents[1]);
            if s == (m.0, 1) {
                Ok(m)
            } else {
                Err(format!(
                    "`mul_col_broadcast` scaler must be {}×1, found {}×{}",
                    m.0, s.0, s.1
                ))
            }
        }
        "spmm" => {
            arity(2)?;
            let IrMeta::Sparse { rows, cols, nnz } = *meta else {
                return Err("`spmm` requires Sparse metadata".to_string());
            };
            let (values, dense) = (parents[0], parents[1]);
            if values != (nnz, 1) {
                return Err(format!(
                    "`spmm` values must be nnz×1 = {nnz}×1, found {}×{}",
                    values.0, values.1
                ));
            }
            if dense.0 != cols {
                return Err(format!(
                    "`spmm` dense rows must equal sparse cols {cols}, found {}×{}",
                    dense.0, dense.1
                ));
            }
            Ok((rows, dense.1))
        }
        "edge_softmax" => {
            arity(1)?;
            let IrMeta::Sparse { nnz, .. } = *meta else {
                return Err("`edge_softmax` requires Sparse metadata".to_string());
            };
            let s = parents[0];
            if s == (nnz, 1) {
                Ok((nnz, 1))
            } else {
                Err(format!(
                    "`edge_softmax` scores must be nnz×1 = {nnz}×1, found {}×{}",
                    s.0, s.1
                ))
            }
        }
        "gather_rows" => {
            arity(1)?;
            let IrMeta::Gather { idx_len, idx_max } = *meta else {
                return Err("`gather_rows` requires Gather metadata".to_string());
            };
            let src = parents[0];
            match idx_max {
                Some(mx) if mx >= src.0 => Err(format!(
                    "`gather_rows` index {mx} out of bounds for {} source rows",
                    src.0
                )),
                _ => Ok((idx_len, src.1)),
            }
        }
        "nll_masked" => {
            arity(1)?;
            let IrMeta::Nll {
                labels_len,
                idx_len,
                idx_max,
                label_max,
            } = *meta
            else {
                return Err("`nll_masked` requires Nll metadata".to_string());
            };
            let (n, c) = parents[0];
            if labels_len != n {
                return Err(format!(
                    "`nll_masked` labels length {labels_len} must equal input rows {n}"
                ));
            }
            if idx_len == 0 {
                return Err("`nll_masked` loss-row index list is empty".to_string());
            }
            if let Some(mx) = idx_max {
                if mx >= n {
                    return Err(format!(
                        "`nll_masked` loss row {mx} out of bounds for {n} rows"
                    ));
                }
            }
            if let Some(mx) = label_max {
                if mx >= c {
                    return Err(format!(
                        "`nll_masked` label {mx} out of bounds for {c} classes"
                    ));
                }
            }
            Ok((1, 1))
        }
        "concat_cols" => {
            arity(2)?;
            let (a, b) = (parents[0], parents[1]);
            if a.0 == b.0 {
                Ok((a.0, a.1 + b.1))
            } else {
                Err(format!(
                    "`concat_cols` row counts differ: {} vs {}",
                    a.0, b.0
                ))
            }
        }
        "concat_rows" => {
            arity(2)?;
            let (a, b) = (parents[0], parents[1]);
            if a.1 == b.1 {
                Ok((a.0 + b.0, a.1))
            } else {
                Err(format!(
                    "`concat_rows` column counts differ: {} vs {}",
                    a.1, b.1
                ))
            }
        }
        "sum_all" | "mean_all" => {
            arity(1)?;
            Ok((1, 1))
        }
        "row_sum" => {
            arity(1)?;
            Ok((parents[0].0, 1))
        }
        "dropout" => {
            arity(1)?;
            let IrMeta::Mask { len } = *meta else {
                return Err("`dropout` requires Mask metadata".to_string());
            };
            let (r, c) = parents[0];
            if len == r * c {
                Ok((r, c))
            } else {
                Err(format!(
                    "`dropout` mask length {len} must equal element count {}",
                    r * c
                ))
            }
        }
        _ => Err(format!("unknown op `{op}`")),
    }
}

/// How many individual leak warnings to emit before summarising.
const LEAK_WARNING_CAP: usize = 8;

/// Runs every static check over `ir` and returns the findings.
pub fn verify_tape(ir: &TapeIr, cfg: &TapeCheckConfig) -> Vec<Diag> {
    let mut diags = Vec::new();
    let n = ir.len();
    ses_obs::metrics::VERIFY_CHECKS.add(n as u64);
    let subject = |id: usize| -> String {
        let op = ir.nodes.get(id).map_or("?", |nd| nd.op.as_str());
        format!("node {id} (op `{op}`)")
    };

    // --- topology: dense ids, parents strictly before children -------------
    let mut topology_ok = true;
    for (i, node) in ir.nodes.iter().enumerate() {
        if node.id != i {
            diags.push(Diag::error(
                "tape-ir",
                "topology",
                subject(i),
                format!(
                    "arena slot {i} holds node id {}; ids must be dense",
                    node.id
                ),
            ));
            topology_ok = false;
        }
        for &p in &node.parents {
            if p >= i {
                diags.push(Diag::error(
                    "tape-ir",
                    "topology",
                    subject(i),
                    format!(
                        "parent {p} does not precede its child; the reverse \
                         sweep would visit it too late"
                    ),
                ));
                topology_ok = false;
            }
        }
    }
    if !topology_ok {
        // Every later analysis indexes parents; bail on a mangled arena.
        record_diags(&diags);
        return diags;
    }

    // --- per-node shape / backward / determinism checks --------------------
    for (i, node) in ir.nodes.iter().enumerate() {
        let pshapes: Vec<(usize, usize)> =
            node.parents.iter().map(|&p| ir.nodes[p].shape).collect();
        let known = op_determinism(&node.op).is_some();
        if !known {
            diags.push(Diag::error(
                "tape-ir",
                "determinism",
                subject(i),
                "op is not in the verifier registry: its reduction order \
                 cannot be proven thread-count-independent (and its shape \
                 rule is unknown)"
                    .to_string(),
            ));
        } else if node.op == "leaf" {
            if !node.parents.is_empty() {
                diags.push(Diag::error(
                    "tape-ir",
                    "shape",
                    subject(i),
                    format!("`leaf` must have no parents, found {}", node.parents.len()),
                ));
            }
        } else {
            match infer_shape(&node.op, &pshapes, &node.meta) {
                Ok(s) if s == node.shape => {}
                Ok(s) => diags.push(Diag::error(
                    "tape-ir",
                    "shape",
                    subject(i),
                    format!(
                        "declared shape {}×{} but operands imply {}×{}",
                        node.shape.0, node.shape.1, s.0, s.1
                    ),
                )),
                Err(e) => diags.push(Diag::error("tape-ir", "shape", subject(i), e)),
            }
        }

        let parent_needs = node.parents.iter().any(|&p| ir.nodes[p].needs_grad);
        if node.op != "leaf" {
            if node.needs_grad && !node.has_backward {
                diags.push(Diag::error(
                    "tape-ir",
                    "backward-coverage",
                    subject(i),
                    "op needs a gradient but declares no backward rule".to_string(),
                ));
            }
            if !node.needs_grad && parent_needs {
                diags.push(Diag::error(
                    "tape-ir",
                    "backward-coverage",
                    subject(i),
                    "gradient wiring cut: a parent needs a gradient but this \
                     node will not propagate one"
                        .to_string(),
                ));
            }
            if node.needs_grad && !parent_needs {
                diags.push(Diag::warning(
                    "tape-ir",
                    "backward-coverage",
                    subject(i),
                    "spurious needs_grad: no parent carries a gradient".to_string(),
                ));
            }
        }
    }

    // --- duplicate subgraph detection (non-leaf nodes) ----------------------
    let mut seen: HashMap<String, usize> = HashMap::new();
    for (i, node) in ir.nodes.iter().enumerate() {
        if node.op == "leaf" {
            continue;
        }
        let key = format!(
            "{}|{:?}|{:?}|{:?}",
            node.op, node.parents, node.params, node.meta
        );
        match seen.get(&key) {
            Some(&first) => diags.push(Diag::warning(
                "tape-ir",
                "duplicate",
                subject(i),
                format!("recomputes node {first} exactly (same op, operands and attributes)"),
            )),
            None => {
                seen.insert(key, i);
            }
        }
    }

    // --- loss-anchored analysis --------------------------------------------
    if let Some(loss) = cfg.loss {
        if loss >= n {
            diags.push(Diag::error(
                "tape-ir",
                "loss-shape",
                format!("node {loss}"),
                format!("loss id out of range for a {n}-node tape"),
            ));
            record_diags(&diags);
            return diags;
        }
        if ir.nodes[loss].shape != (1, 1) {
            diags.push(Diag::error(
                "tape-ir",
                "loss-shape",
                subject(loss),
                format!(
                    "loss must be scalar (1×1), found {}×{}",
                    ir.nodes[loss].shape.0, ir.nodes[loss].shape.1
                ),
            ));
        }

        // Backward reachability from the loss via parent edges.
        let mut reachable = vec![false; n];
        reachable[loss] = true;
        let mut stack = vec![loss];
        while let Some(i) = stack.pop() {
            for &p in &ir.nodes[i].parents {
                if !reachable[p] {
                    reachable[p] = true;
                    stack.push(p);
                }
            }
        }

        // Static leak classification, mirroring Tape::leaked_nodes.
        let mut unused = Vec::new();
        let mut after_loss = Vec::new();
        for (i, node) in ir.nodes.iter().enumerate() {
            if reachable[i] || !node.needs_grad {
                if !reachable[i] && i < loss && node.op != "leaf" {
                    diags.push(Diag::warning(
                        "tape-ir",
                        "dead-code",
                        subject(i),
                        "forward compute never reaches the loss".to_string(),
                    ));
                }
                continue;
            }
            if i > loss {
                after_loss.push(i);
            } else if node.op == "leaf" {
                unused.push(i);
            } else {
                diags.push(Diag::warning(
                    "tape-ir",
                    "leak-budget",
                    subject(i),
                    "pruned: wired for gradients but cut off from the loss".to_string(),
                ));
            }
        }

        let list = |ids: &[usize]| -> String {
            let head: Vec<String> = ids.iter().take(4).map(|&i| subject(i)).collect();
            let tail = if ids.len() > 4 { ", …" } else { "" };
            format!("{}{}", head.join(", "), tail)
        };
        match cfg.leak_budget {
            Some(budget) if unused.len() > budget.max_unused => diags.push(Diag::error(
                "tape-ir",
                "leak-budget",
                subject(loss),
                format!(
                    "{} trainable leaf/leaves unreachable from the loss \
                     (budget {}): {}",
                    unused.len(),
                    budget.max_unused,
                    list(&unused)
                ),
            )),
            _ => {
                for &i in unused.iter().take(LEAK_WARNING_CAP) {
                    diags.push(Diag::warning(
                        "tape-ir",
                        "leak-budget",
                        subject(i),
                        "trainable leaf unreachable from the loss (unused)".to_string(),
                    ));
                }
            }
        }
        match cfg.leak_budget {
            Some(budget) if after_loss.len() > budget.max_after_loss => diags.push(Diag::error(
                "tape-ir",
                "leak-budget",
                subject(loss),
                format!(
                    "{} gradient-bearing node(s) recorded after the loss \
                     (budget {}): {}",
                    after_loss.len(),
                    budget.max_after_loss,
                    list(&after_loss)
                ),
            )),
            _ => {
                for &i in after_loss.iter().take(LEAK_WARNING_CAP) {
                    diags.push(Diag::warning(
                        "tape-ir",
                        "leak-budget",
                        subject(i),
                        "recorded after the loss; backward will never reach it".to_string(),
                    ));
                }
            }
        }
    }

    record_diags(&diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::Severity;

    fn errors(diags: &[Diag]) -> Vec<&Diag> {
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    #[test]
    fn clean_linear_trace_verifies() {
        let mut b = IrBuilder::new();
        let x = b.constant(4, 3);
        let w = b.leaf(3, 2);
        let h = b.binary("matmul", x, w).expect("matmul");
        let r = b.unary("relu", h).expect("relu");
        let loss = b.unary("mean_all", r).expect("mean_all");
        let ir = b.finish();
        let diags = verify_tape(
            &ir,
            &TapeCheckConfig {
                loss: Some(loss),
                leak_budget: Some(ses_tensor::LeakBudget::zero()),
            },
        );
        assert!(errors(&diags).is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn infer_shape_rejects_bad_matmul() {
        let e = infer_shape("matmul", &[(2, 3), (2, 3)], &IrMeta::None);
        assert!(e.is_err());
        assert_eq!(
            infer_shape("matmul", &[(2, 3), (3, 5)], &IrMeta::None),
            Ok((2, 5))
        );
    }

    #[test]
    fn unknown_op_is_a_determinism_error() {
        let mut b = IrBuilder::new();
        let x = b.leaf(2, 2);
        let bad = b.raw("scatter_add_unordered", vec![x], (2, 2), true, true);
        let ir = b.finish();
        let diags = verify_tape(&ir, &TapeCheckConfig::default());
        let errs = errors(&diags);
        assert!(errs.iter().any(|d| d.check == "determinism"), "{diags:?}");
        assert!(errs[0].subject.contains(&format!("node {bad}")));
    }

    #[test]
    fn gradient_wiring_cut_is_detected() {
        // A mask node that drops needs_grad even though its parent carries a
        // gradient — the silent failure mode the verifier exists to catch.
        let mut b = IrBuilder::new();
        let w = b.leaf(3, 3);
        let cut = b.raw("relu", vec![w], (3, 3), false, true);
        let ir = b.finish();
        let diags = verify_tape(&ir, &TapeCheckConfig::default());
        assert!(
            errors(&diags)
                .iter()
                .any(|d| d.check == "backward-coverage"
                    && d.subject.contains(&format!("node {cut}"))),
            "{diags:?}"
        );
    }

    #[test]
    fn duplicate_subgraphs_warn() {
        let mut b = IrBuilder::new();
        let x = b.leaf(2, 2);
        let a = b.unary("relu", x).expect("relu");
        let _b2 = b.unary("relu", x).expect("relu");
        let _ = a;
        let ir = b.finish();
        let diags = verify_tape(&ir, &TapeCheckConfig::default());
        assert!(diags.iter().any(|d| d.check == "duplicate"), "{diags:?}");
    }

    #[test]
    fn leak_budget_zero_flags_unused_leaf() {
        let mut b = IrBuilder::new();
        let x = b.leaf(2, 2);
        let _orphan = b.leaf(4, 4);
        let loss = b.unary("mean_all", x).expect("mean_all");
        let ir = b.finish();
        let diags = verify_tape(
            &ir,
            &TapeCheckConfig {
                loss: Some(loss),
                leak_budget: Some(ses_tensor::LeakBudget::zero()),
            },
        );
        assert!(
            errors(&diags).iter().any(|d| d.check == "leak-budget"),
            "{diags:?}"
        );
        // With a budget of one unused leaf, the same trace passes.
        let relaxed = verify_tape(
            &ir,
            &TapeCheckConfig {
                loss: Some(loss),
                leak_budget: Some(ses_tensor::LeakBudget {
                    max_unused: 1,
                    max_after_loss: 0,
                }),
            },
        );
        assert!(errors(&relaxed).is_empty(), "{relaxed:?}");
    }
}
