//! The CI harness behind the `ses-verify` binary.
//!
//! A clean run exercises both engines against the real workspace artefacts:
//! a recorded SES-style tape ([`ses_tensor::Tape::export_ir`]), the same
//! architecture dry-run traced through [`IrBuilder`] with no kernels, and
//! the full partition model-checking sweeps. A **seeded-defect** run instead
//! feeds each engine an input that is wrong in a known way and must come
//! back with errors — proving in CI that the verifier itself still bites,
//! not just that the workspace is currently clean.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses_gnn::{AdjView, Arma, Asdgn, Encoder, ForwardCtx, Gat, Gcn, Gin, Sage, UniMp};
use ses_graph::Graph;
use ses_tensor::{CsrStructure, LeakBudget, Matrix, Tape, TapeIr};

use crate::builder::IrBuilder;
use crate::equiv::check_equivalence;
use crate::partition::{
    beyond_bound_spotchecks, check_row_partition, edge_case_suite, exhaustive_csr_model,
    exhaustive_small_model, isolation_first_task_panic, PartitionReport,
};
use crate::tape_check::{verify_tape, TapeCheckConfig};
use crate::{error_count, Diag};

/// A deliberately wrong input for one engine, selectable from the CLI via
/// `--seed-defect`. Each variant must make [`run`] report at least one error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededDefect {
    /// An `add` node whose operands are 2×3 and 3×3 — the tape-IR shape
    /// checker must reject it.
    ShapeMismatch,
    /// A gradient-bearing op with no backward rule, plus a trainable leaf
    /// disconnected from the loss — backward-coverage and leak-budget
    /// errors.
    BackwardGap,
    /// A floor-division row partitioner that drops the tail remainder and
    /// emits empty ranges — the partition checker must reject it.
    BrokenPartitioner,
    /// A "rewrite" that swaps the operands of a subtraction while claiming
    /// (via an identity witness) to preserve the computation — the
    /// structural-equivalence checker must refute it.
    BadRewrite,
}

impl SeededDefect {
    /// Parses a CLI spelling (`shape-mismatch`, `backward-gap`,
    /// `broken-partitioner`, `bad-rewrite`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "shape-mismatch" => Some(SeededDefect::ShapeMismatch),
            "backward-gap" => Some(SeededDefect::BackwardGap),
            "broken-partitioner" => Some(SeededDefect::BrokenPartitioner),
            "bad-rewrite" => Some(SeededDefect::BadRewrite),
            _ => None,
        }
    }

    /// All CLI spellings, for usage text.
    pub const SPELLINGS: [&'static str; 4] = [
        "shape-mismatch",
        "backward-gap",
        "broken-partitioner",
        "bad-rewrite",
    ];
}

/// Everything one [`run`] produced.
#[derive(Debug, Default)]
pub struct SelfCheckReport {
    /// Findings from both engines, in emission order.
    pub diags: Vec<Diag>,
    /// Tape-IR nodes verified across all traces.
    pub tape_nodes: usize,
    /// Partitioner invocations model-checked.
    pub partition_cases: u64,
}

impl SelfCheckReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        error_count(&self.diags)
    }

    /// True when no errors were found (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }
}

/// Records a small SES-style model on a real [`Tape`] — two weight layers,
/// learned per-edge attention through `edge_softmax`/`spmm`, masked NLL
/// loss — and exports its IR along with the loss node id.
///
/// This is the strongest clean-run fixture: the IR comes out of the same
/// export path production tapes use, so a verifier false positive here means
/// the verifier disagrees with the real recording rules.
fn recorded_ses_tape() -> (TapeIr, usize) {
    let mut t = Tape::new();
    let structure = Arc::new(CsrStructure::from_edges(
        4,
        4,
        &[(0, 0), (0, 1), (1, 0), (1, 2), (2, 3), (3, 2)],
    ));
    let nnz = structure.nnz();
    let x = t.constant(Matrix::from_vec(
        4,
        3,
        (0..12).map(|i| (i as f32) * 0.1 - 0.5).collect(),
    ));
    let w1 = t.leaf(Matrix::from_vec(
        3,
        4,
        (0..12).map(|i| ((i % 5) as f32) * 0.2 - 0.4).collect(),
    ));
    let h0 = t.matmul(x, w1);
    let b1 = t.leaf(Matrix::zeros(1, 4));
    let h1 = t.add_row_broadcast(h0, b1);
    let h = t.relu(h1);
    let scores = t.leaf(Matrix::from_vec(
        nnz,
        1,
        (0..nnz).map(|i| (i as f32) * 0.3 - 0.6).collect(),
    ));
    let att = t.edge_softmax(Arc::clone(&structure), scores);
    let agg = t.spmm(structure, att, h);
    let w2 = t.leaf(Matrix::from_vec(
        4,
        2,
        (0..8).map(|i| ((i % 3) as f32) * 0.25 - 0.25).collect(),
    ));
    let logits = t.matmul(agg, w2);
    let logp = t.log_softmax_rows(logits);
    let loss = t.nll_masked(logp, Arc::new(vec![0, 1, 0, 1]), Arc::new(vec![0, 1, 2]));
    (t.export_ir(), loss.index())
}

/// The small two-triangle fixture graph the backbone sweep records against.
fn fixture_graph() -> Graph {
    let n = 6;
    let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
    let features = Matrix::from_vec(
        n,
        4,
        (0..n * 4).map(|i| ((i % 9) as f32) * 0.1 - 0.4).collect(),
    );
    Graph::new(n, &edges, features, vec![0, 1, 0, 1, 0, 1])
}

/// Records one classifier training step (forward + masked cross-entropy) for
/// every backbone the bench binaries train — the same `Encoder::forward`
/// code `ses-bench` runs, on a small fixture graph — and exports each tape's
/// IR with its loss node.
///
/// This is the ci.sh gate for the bench binaries' tapes: rather than running
/// the (slow) experiments, the exact architectures they record are verified
/// statically on every run.
fn backbone_step_tapes() -> Vec<(&'static str, TapeIr, usize)> {
    let graph = fixture_graph();
    let adj = AdjView::of_graph(&graph);
    let mut rng = StdRng::seed_from_u64(11);
    let (fi, hi, cl) = (graph.n_features(), 8, graph.n_classes());
    let encoders: Vec<(&'static str, Box<dyn Encoder>)> = vec![
        ("GCN", Box::new(Gcn::new(fi, hi, cl, &mut rng))),
        ("GAT", Box::new(Gat::new(fi, hi, cl, 2, &mut rng))),
        ("GraphSAGE", Box::new(Sage::new(fi, hi, cl, &mut rng))),
        ("GIN", Box::new(Gin::new(fi, hi, cl, &mut rng))),
        ("ARMA", Box::new(Arma::new(fi, hi, cl, 2, &mut rng))),
        ("UniMP", Box::new(UniMp::new(fi, hi, cl, &mut rng))),
        ("ASDGN", Box::new(Asdgn::new(fi, hi, cl, 2, &mut rng))),
    ];
    let labels = Arc::new(graph.labels().to_vec());
    let idx = Arc::new(vec![0usize, 1, 3, 4]);
    encoders
        .into_iter()
        .map(|(name, enc)| {
            let mut tape = Tape::new();
            let x = tape.constant(graph.features().clone());
            let mut ctx = ForwardCtx {
                tape: &mut tape,
                adj: &adj,
                x,
                edge_mask: None,
                train: true,
                rng: &mut rng,
            };
            let out = enc.forward(&mut ctx);
            let loss = tape.cross_entropy_masked(out.logits, Arc::clone(&labels), Arc::clone(&idx));
            (name, tape.export_ir(), loss.index())
        })
        .collect()
}

/// Dry-run traces the same architecture (plus dropout) through
/// [`IrBuilder`] — no kernels, no values, just shape arithmetic.
fn dry_run_ses_trace() -> Result<(TapeIr, usize), String> {
    let mut b = IrBuilder::new();
    let x = b.constant(8, 5);
    let w1 = b.leaf(5, 6);
    let h0 = b.binary("matmul", x, w1)?;
    let bias = b.leaf(1, 6);
    let h1 = b.binary("add_row_broadcast", h0, bias)?;
    let h2 = b.unary("relu", h1)?;
    let hd = b.dropout(h2, 48)?;
    let scores = b.leaf(12, 1);
    let att = b.edge_softmax(8, 8, 12, scores)?;
    let agg = b.spmm(8, 8, 12, att, hd)?;
    let w2 = b.leaf(6, 3);
    let logits = b.binary("matmul", agg, w2)?;
    let logp = b.unary("log_softmax_rows", logits)?;
    let loss = b.nll_masked(logp, 8, 4, Some(7), Some(2))?;
    Ok((b.finish(), loss))
}

/// The floor-division partitioner every parallel-runtime tutorial writes
/// first: drops the `n % parts` tail and emits empty ranges when
/// `parts > n`. Kept here as the seeded defect the partition checker must
/// keep rejecting.
fn broken_even_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let chunk = n / parts;
    (0..parts).map(|i| i * chunk..(i + 1) * chunk).collect()
}

fn verify_ir(report: &mut SelfCheckReport, ir: &TapeIr, cfg: &TapeCheckConfig) {
    report.tape_nodes += ir.len();
    report.diags.extend(verify_tape(ir, cfg));
}

fn absorb_partitions(report: &mut SelfCheckReport, p: PartitionReport) {
    report.partition_cases += p.cases;
    report.diags.extend(p.diags);
}

/// Runs the full self-check. With `defect == None` this is the CI gate: both
/// engines over the real artefacts, expected clean (exit 0). With a seeded
/// defect the corresponding engine gets a known-bad input and the report
/// must carry errors — CI asserts the resulting non-zero exit to prove the
/// verifier still bites.
pub fn run(defect: Option<SeededDefect>) -> SelfCheckReport {
    let mut report = SelfCheckReport::default();
    match defect {
        None => {
            let (ir, loss) = recorded_ses_tape();
            verify_ir(
                &mut report,
                &ir,
                &TapeCheckConfig {
                    loss: Some(loss),
                    leak_budget: Some(LeakBudget::zero()),
                },
            );
            // The production architecture itself: one explainable-training
            // step (GCN + mask generator, full Eq. 9 objective) recorded by
            // the same ses-core code `fit` runs, not a hand-built imitation.
            let (ir, loss) = ses_core::explain_step_ir();
            verify_ir(
                &mut report,
                &ir,
                &TapeCheckConfig {
                    loss: Some(loss),
                    leak_budget: Some(LeakBudget::zero()),
                },
            );
            // Every backbone architecture the bench binaries train, recorded
            // through the real `Encoder::forward` paths and statically
            // verified with a zero leak budget.
            for (_name, ir, loss) in backbone_step_tapes() {
                verify_ir(
                    &mut report,
                    &ir,
                    &TapeCheckConfig {
                        loss: Some(loss),
                        leak_budget: Some(LeakBudget::zero()),
                    },
                );
            }
            match dry_run_ses_trace() {
                Ok((ir, loss)) => verify_ir(
                    &mut report,
                    &ir,
                    &TapeCheckConfig {
                        loss: Some(loss),
                        leak_budget: Some(LeakBudget::zero()),
                    },
                ),
                Err(e) => report.diags.push(Diag::error(
                    "tape-ir",
                    "shape",
                    "dry-run SES trace".to_string(),
                    format!("builder rejected the reference architecture: {e}"),
                )),
            }
            let mut parts = PartitionReport::default();
            parts.merge(exhaustive_small_model(12, 8));
            parts.merge(exhaustive_csr_model(4, 3, 6));
            parts.merge(edge_case_suite());
            parts.merge(beyond_bound_spotchecks());
            parts.merge(isolation_first_task_panic());
            absorb_partitions(&mut report, parts);
        }
        Some(SeededDefect::ShapeMismatch) => {
            let mut b = IrBuilder::new();
            let a = b.leaf(2, 3);
            let c = b.leaf(3, 3);
            b.raw("add", vec![a, c], (2, 3), true, true);
            verify_ir(&mut report, &b.finish(), &TapeCheckConfig::default());
        }
        Some(SeededDefect::BackwardGap) => {
            let mut b = IrBuilder::new();
            let w = b.leaf(3, 3);
            let r = b.raw("relu", vec![w], (3, 3), true, false);
            let loss = b.raw("mean_all", vec![r], (1, 1), true, true);
            b.leaf(2, 2); // trainable, never consumed
            verify_ir(
                &mut report,
                &b.finish(),
                &TapeCheckConfig {
                    loss: Some(loss),
                    leak_budget: Some(LeakBudget::zero()),
                },
            );
        }
        Some(SeededDefect::BadRewrite) => {
            // Original: loss = mean(a - b). "Rewrite": the subtraction's
            // operands are swapped but the witness claims node-for-node
            // equality — exactly the kind of silently wrong transform the
            // equivalence checker exists to refute.
            let build = |swap: bool| -> (TapeIr, usize) {
                let mut b = IrBuilder::new();
                let a = b.leaf(3, 3);
                let c = b.leaf(3, 3);
                let (lhs, rhs) = if swap { (c, a) } else { (a, c) };
                let d = b
                    .binary("sub", lhs, rhs)
                    .unwrap_or_else(|e| unreachable!("fixture builds: {e}"));
                let loss = b
                    .unary("mean_all", d)
                    .unwrap_or_else(|e| unreachable!("fixture builds: {e}"));
                (b.finish(), loss)
            };
            let (original, loss) = build(false);
            let (rewritten, loss_r) = build(true);
            let witness: Vec<usize> = (0..rewritten.len()).collect();
            report.tape_nodes += rewritten.len();
            report.diags.extend(check_equivalence(
                &original,
                &rewritten,
                &witness,
                &[(loss, loss_r)],
            ));
        }
        Some(SeededDefect::BrokenPartitioner) => {
            let mut parts = PartitionReport::default();
            for n in 0..=12usize {
                for p in 1..=8usize {
                    let subject = format!("broken_even_ranges(n={n}, parts={p})");
                    let ranges = broken_even_ranges(n, p);
                    parts.cases += 1;
                    parts
                        .diags
                        .extend(check_row_partition(&subject, n, p, &ranges, true));
                }
            }
            absorb_partitions(&mut report, parts);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_is_clean() {
        let r = run(None);
        assert!(r.is_clean(), "clean run found errors: {:?}", r.diags);
        assert!(r.tape_nodes >= 20, "all traces verified: {}", r.tape_nodes);
        assert!(
            r.partition_cases > 1000,
            "sweeps ran: {}",
            r.partition_cases
        );
    }

    #[test]
    fn real_core_trace_verifies_clean_with_zero_leak_budget() {
        // The IR exported from one production explainable-training step
        // must pass every static check: shapes, backward coverage,
        // determinism registry, and full reachability of all trainable
        // leaves (encoder + mask generator) from the Eq. 9 loss.
        let (ir, loss) = ses_core::explain_step_ir();
        assert!(
            ir.len() > 50,
            "a real explain step is a substantial tape: {} nodes",
            ir.len()
        );
        let diags = verify_tape(
            &ir,
            &TapeCheckConfig {
                loss: Some(loss),
                leak_budget: Some(LeakBudget::zero()),
            },
        );
        assert_eq!(
            error_count(&diags),
            0,
            "core trace must be clean: {diags:?}"
        );
    }

    #[test]
    fn recorded_tape_matches_dry_run_op_stream() {
        let (real, _) = recorded_ses_tape();
        let dry = match dry_run_ses_trace() {
            Ok((ir, _)) => ir,
            Err(e) => unreachable!("reference trace must build: {e}"),
        };
        let ops = |ir: &TapeIr| -> Vec<String> {
            ir.nodes
                .iter()
                .map(|n| n.op.clone())
                .filter(|o| o != "dropout")
                .collect()
        };
        assert_eq!(ops(&real), ops(&dry));
    }

    #[test]
    fn seeded_shape_mismatch_is_caught() {
        let r = run(Some(SeededDefect::ShapeMismatch));
        assert!(!r.is_clean());
        assert!(
            r.diags
                .iter()
                .any(|d| d.check == "shape" && d.subject.contains("add")),
            "{:?}",
            r.diags
        );
    }

    #[test]
    fn seeded_backward_gap_is_caught() {
        let r = run(Some(SeededDefect::BackwardGap));
        assert!(r.diags.iter().any(|d| d.check == "backward-coverage"));
        assert!(r.diags.iter().any(|d| d.check == "leak-budget"));
        assert!(r.error_count() >= 2, "{:?}", r.diags);
    }

    #[test]
    fn seeded_broken_partitioner_is_caught() {
        let r = run(Some(SeededDefect::BrokenPartitioner));
        assert!(!r.is_clean());
        // Both failure modes of the floor-division partitioner show up.
        assert!(
            r.diags.iter().any(|d| d.check == "coverage"),
            "{:?}",
            r.diags
        );
        assert!(r.diags.iter().any(|d| d.check == "monotonicity"));
        // Subjects carry the reproducing inputs.
        assert!(r.diags.iter().all(|d| d.subject.contains("n=")));
    }

    #[test]
    fn seeded_bad_rewrite_is_caught() {
        let r = run(Some(SeededDefect::BadRewrite));
        assert!(!r.is_clean());
        assert!(
            r.diags
                .iter()
                .any(|d| d.engine == "equiv" && d.check == "congruence"),
            "{:?}",
            r.diags
        );
    }

    #[test]
    fn every_bench_backbone_tape_verifies_clean() {
        for (name, ir, loss) in backbone_step_tapes() {
            assert!(ir.len() > 10, "{name}: suspiciously small tape");
            let diags = verify_tape(
                &ir,
                &TapeCheckConfig {
                    loss: Some(loss),
                    leak_budget: Some(LeakBudget::zero()),
                },
            );
            assert_eq!(error_count(&diags), 0, "{name}: {diags:?}");
        }
    }

    #[test]
    fn defect_spellings_round_trip() {
        for s in SeededDefect::SPELLINGS {
            assert!(SeededDefect::parse(s).is_some(), "{s}");
        }
        assert!(SeededDefect::parse("no-such-defect").is_none());
    }
}
