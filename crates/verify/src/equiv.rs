//! Structural-equivalence checker: value-numbering bisimulation between an
//! original [`TapeIr`] and a rewritten one.
//!
//! Every `ses-ir` rewrite pass is *translation-validated*: instead of
//! trusting the pass, the compiler hands this module the original IR, the
//! rewritten IR, and a **witness** — for each rewritten node, the original
//! node it claims to compute the same value as. The checker then proves the
//! claim by induction over the (topologically ordered) rewritten nodes:
//!
//! 1. [`value_numbers`] assigns each original node a value number such that
//!    equal numbers ⇒ provably equal values. CSE-safe ops (pure, no
//!    side-channel payload — see [`ses_tensor::OpInfo::cse_safe`]) are keyed
//!    by `(op, params, meta, parent numbers)`; leaves and payload-carrying
//!    ops each get a fresh unique number, so the numbering never conflates
//!    nodes whose equality the IR cannot express.
//! 2. [`check_equivalence`] verifies, per rewritten node `r` with witness
//!    `o`: the op, scalar params, side-channel meta and declared shape match
//!    `o` exactly (*congruence*), and each parent of `r` is witnessed to a
//!    node value-equal to the corresponding parent of `o`. By induction,
//!    `value(r) = value(o)`.
//! 3. Finally each declared output pair must be value-equal and
//!    shape-equal, so the rewritten graph computes the same observable
//!    results.
//!
//! The witness also fixes *payload identity*: the plan executor feeds a
//! rewritten node the payload (leaf matrix, CSR structure, index list,
//! dropout mask) of its witnessed original node, which is what makes the
//! congruence rule sound for payload-carrying ops whose contents the IR only
//! summarises. A runtime bit-identity proptest in `crates/ir` closes the
//! loop end to end.

use std::collections::HashMap;

use ses_tensor::{op_info, TapeIr};

use crate::{record_diags, Diag};

/// Assigns a value number to every node of `ir` (indexed by node id).
///
/// Equal numbers guarantee equal runtime values. The converse does not hold:
/// leaves and payload-carrying ops are always given fresh numbers because
/// the IR carries only summaries of their defining data.
pub fn value_numbers(ir: &TapeIr) -> Vec<usize> {
    let mut vn = Vec::with_capacity(ir.len());
    let mut table: HashMap<String, usize> = HashMap::new();
    for node in &ir.nodes {
        let fresh = ir.len() + vn.len(); // disjoint from keyed numbers' ids
        let cse_safe = op_info(&node.op).is_some_and(|i| i.cse_safe())
            && node.parents.iter().all(|&p| p < vn.len());
        let n = if cse_safe {
            let parent_vns: Vec<usize> = node.parents.iter().map(|&p| vn[p]).collect();
            let key = format!(
                "{}|{:?}|{:?}|{:?}",
                node.op, node.params, node.meta, parent_vns
            );
            *table.entry(key).or_insert(fresh)
        } else {
            fresh
        };
        vn.push(n);
    }
    vn
}

/// Checks that `rewritten` computes the same values as `original` under the
/// given witness. `witness[r]` names the original node that rewritten node
/// `r` claims to equal; `outputs` lists `(original_id, rewritten_id)` pairs
/// that must remain observably equal. Returns diagnostics under engine
/// `"equiv"`; an empty error count means the rewrite is validated.
pub fn check_equivalence(
    original: &TapeIr,
    rewritten: &TapeIr,
    witness: &[usize],
    outputs: &[(usize, usize)],
) -> Vec<Diag> {
    let mut diags = Vec::new();
    if witness.len() != rewritten.len() {
        diags.push(Diag::error(
            "equiv",
            "witness",
            format!("witness len {}", witness.len()),
            format!(
                "expected one entry per rewritten node ({})",
                rewritten.len()
            ),
        ));
        record_diags(&diags);
        return diags;
    }
    if let Some((r, &o)) = witness
        .iter()
        .enumerate()
        .find(|&(_, &o)| o >= original.len())
    {
        diags.push(Diag::error(
            "equiv",
            "witness",
            format!("rewritten node {r}"),
            format!(
                "witness points at original node {o}, but the original has {} nodes",
                original.len()
            ),
        ));
        record_diags(&diags);
        return diags;
    }

    let vn = value_numbers(original);
    for (r, node) in rewritten.nodes.iter().enumerate() {
        let o = &original.nodes[witness[r]];
        let subject = || {
            format!(
                "rewritten node {r} (op `{}`) ~ original node {}",
                node.op, o.id
            )
        };
        if node.op != o.op || node.params != o.params || node.meta != o.meta {
            diags.push(Diag::error(
                "equiv",
                "congruence",
                subject(),
                format!(
                    "op/params/meta differ from witnessed original \
                     (`{}` {:?} {:?} vs `{}` {:?} {:?})",
                    node.op, node.params, node.meta, o.op, o.params, o.meta
                ),
            ));
            continue;
        }
        if node.shape != o.shape {
            diags.push(Diag::error(
                "equiv",
                "congruence",
                subject(),
                format!("shape {:?} != witnessed {:?}", node.shape, o.shape),
            ));
            continue;
        }
        if node.parents.len() != o.parents.len() {
            diags.push(Diag::error(
                "equiv",
                "congruence",
                subject(),
                format!(
                    "arity {} != witnessed {}",
                    node.parents.len(),
                    o.parents.len()
                ),
            ));
            continue;
        }
        for (k, (&rp, &op_)) in node.parents.iter().zip(&o.parents).enumerate() {
            if rp >= r {
                diags.push(Diag::error(
                    "equiv",
                    "congruence",
                    subject(),
                    format!("parent {k} ({rp}) does not precede the node"),
                ));
                continue;
            }
            if vn[witness[rp]] != vn[op_] {
                diags.push(Diag::error(
                    "equiv",
                    "congruence",
                    subject(),
                    format!(
                        "operand {k}: rewritten parent {rp} is witnessed to original \
                         node {} (vn {}), but the original consumes node {op_} (vn {})",
                        witness[rp], vn[witness[rp]], vn[op_]
                    ),
                ));
            }
        }
    }

    for &(orig_out, rewr_out) in outputs {
        let subject = format!("output pair (orig {orig_out}, rewritten {rewr_out})");
        if orig_out >= original.len() || rewr_out >= rewritten.len() {
            diags.push(Diag::error(
                "equiv",
                "output",
                subject,
                "output id out of range".to_string(),
            ));
            continue;
        }
        if vn[witness[rewr_out]] != vn[orig_out] {
            diags.push(Diag::error(
                "equiv",
                "output",
                subject,
                format!(
                    "rewritten output witnesses original node {} (vn {}), \
                     not value-equal to declared output (vn {})",
                    witness[rewr_out], vn[witness[rewr_out]], vn[orig_out]
                ),
            ));
        } else if original.nodes[orig_out].shape != rewritten.nodes[rewr_out].shape {
            diags.push(Diag::error(
                "equiv",
                "output",
                subject,
                format!(
                    "output shape changed: {:?} -> {:?}",
                    original.nodes[orig_out].shape, rewritten.nodes[rewr_out].shape
                ),
            ));
        }
    }

    record_diags(&diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IrBuilder;
    use crate::error_count;

    fn diamond() -> (TapeIr, usize) {
        let mut b = IrBuilder::new();
        let x = b.constant(4, 3);
        let w = b.leaf(3, 3);
        let h = b.binary("matmul", x, w).unwrap();
        let r1 = b.unary("relu", h).unwrap();
        let r2 = b.unary("relu", h).unwrap(); // duplicate of r1
        let s = b.binary("add", r1, r2).unwrap();
        let loss = b.unary("mean_all", s).unwrap();
        (b.finish(), loss)
    }

    #[test]
    fn value_numbers_merge_pure_duplicates_only() {
        let (ir, _) = diamond();
        let vn = value_numbers(&ir);
        assert_eq!(vn[3], vn[4], "identical relus share a number");
        assert_ne!(vn[0], vn[1], "distinct leaves never merge");
    }

    #[test]
    fn identity_witness_on_same_ir_is_clean() {
        let (ir, loss) = diamond();
        let witness: Vec<usize> = (0..ir.len()).collect();
        let diags = check_equivalence(&ir, &ir, &witness, &[(loss, loss)]);
        assert_eq!(error_count(&diags), 0, "{diags:?}");
    }

    #[test]
    fn dce_subset_with_witness_is_clean() {
        // Original: the diamond plus a dead training-only branch.
        let mut b = IrBuilder::new();
        let x = b.constant(4, 3);
        let w = b.leaf(3, 3);
        let h = b.binary("matmul", x, w).unwrap();
        let dead = b.unary("sigmoid", h).unwrap();
        let _dead2 = b.unary("mean_all", dead).unwrap();
        let out = b.unary("relu", h).unwrap();
        let orig = b.finish();

        // Rewritten: the live slice only, renumbered.
        let mut b = IrBuilder::new();
        let x2 = b.constant(4, 3);
        let w2 = b.leaf(3, 3);
        let h2 = b.binary("matmul", x2, w2).unwrap();
        let out2 = b.unary("relu", h2).unwrap();
        let rewr = b.finish();

        let witness = vec![0, 1, 2, out];
        let diags = check_equivalence(&orig, &rewr, &witness, &[(out, out2)]);
        assert_eq!(error_count(&diags), 0, "{diags:?}");
    }

    #[test]
    fn cse_merged_rewrite_is_clean() {
        let (orig, loss) = diamond();
        // Rewritten: r2 folded into r1; `add` consumes r1 twice.
        let mut b = IrBuilder::new();
        let x = b.constant(4, 3);
        let w = b.leaf(3, 3);
        let h = b.binary("matmul", x, w).unwrap();
        let r1 = b.unary("relu", h).unwrap();
        let s = b.binary("add", r1, r1).unwrap();
        let l2 = b.unary("mean_all", s).unwrap();
        let rewr = b.finish();
        // Witness maps the merged relu to the *first* original relu; the
        // `add`'s second operand check passes because vn[r1] == vn[r2].
        let witness = vec![0, 1, 2, 3, 5, 6];
        let diags = check_equivalence(&orig, &rewr, &witness, &[(loss, l2)]);
        assert_eq!(error_count(&diags), 0, "{diags:?}");
    }

    #[test]
    fn swapped_operands_are_caught() {
        let mut b = IrBuilder::new();
        let a = b.leaf(2, 2);
        let c = b.leaf(2, 2);
        let d = b.binary("sub", a, c).unwrap();
        let _l = b.unary("mean_all", d).unwrap();
        let orig = b.finish();

        let mut b = IrBuilder::new();
        let a2 = b.leaf(2, 2);
        let c2 = b.leaf(2, 2);
        let d2 = b.binary("sub", c2, a2).unwrap(); // swapped: computes c - a
        let _ = (a2, d2);
        let l2 = b.unary("mean_all", 2).unwrap();
        let rewr = b.finish();

        let witness = vec![0, 1, 2, 3];
        let diags = check_equivalence(&orig, &rewr, &witness, &[(3, l2)]);
        assert!(
            diags
                .iter()
                .any(|d| d.check == "congruence" && d.subject.contains("sub")),
            "{diags:?}"
        );
    }

    #[test]
    fn changed_params_are_caught() {
        let mut b = IrBuilder::new();
        let a = b.leaf(2, 2);
        let s = b.unary("relu", a).unwrap();
        let orig = b.finish();

        let mut b = IrBuilder::new();
        let a2 = b.leaf(2, 2);
        let s2 = b.unary("relu", a2).unwrap();
        let mut rewr = b.finish();
        rewr.nodes[s2].params = vec![0.5f32.to_bits()]; // scalar attr drift

        let diags = check_equivalence(&orig, &rewr, &[0, 1], &[(s, s2)]);
        assert!(diags.iter().any(|d| d.check == "congruence"), "{diags:?}");
    }

    #[test]
    fn bad_witness_length_and_range_are_caught() {
        let (ir, _) = diamond();
        let short = check_equivalence(&ir, &ir, &[0, 1], &[]);
        assert!(short.iter().any(|d| d.check == "witness"));
        let mut witness: Vec<usize> = (0..ir.len()).collect();
        witness[2] = 999;
        let oob = check_equivalence(&ir, &ir, &witness, &[]);
        assert!(oob.iter().any(|d| d.check == "witness"));
    }

    #[test]
    fn payload_ops_never_merge() {
        let mut b = IrBuilder::new();
        let v = b.leaf(5, 1);
        let x = b.constant(3, 4);
        let s1 = b.spmm(3, 3, 5, v, x).unwrap();
        let s2 = b.spmm(3, 3, 5, v, x).unwrap();
        let ir = b.finish();
        let vn = value_numbers(&ir);
        // Identical IR footprint, but the CSR contents are invisible here —
        // the numbering must keep them distinct.
        assert_ne!(vn[s1], vn[s2]);
    }
}
