//! `ses-verify` — static analysis for the SES workspace.
//!
//! Three engines, one diagnostic vocabulary:
//!
//! 1. **Tape-IR verifier** ([`tape_check`]) — walks a [`ses_tensor::TapeIr`]
//!    (exported from a real recorded tape, or dry-run traced by
//!    [`builder::IrBuilder`] without executing a single kernel) and proves,
//!    per node: operand shapes are compatible, every gradient-bearing op has
//!    a backward rule, gradient wiring is not silently cut, reduction order
//!    is provably deterministic, and — given a loss node — every trainable
//!    leaf is reachable within a [`ses_tensor::LeakBudget`]. This is the
//!    runtime sanitizer's checklist run *before* any epoch, on shape
//!    arithmetic alone.
//! 2. **Structural-equivalence checker** ([`equiv`]) — value-numbering
//!    bisimulation between an original IR and a rewritten one, the
//!    translation-validation backbone of the `ses-ir` compiler (see
//!    `docs/IR.md`).
//! 3. **Partition safety checker** ([`partition`]) — treats the deterministic
//!    parallel layer (`ses_tensor::par`) as a model-checking target: for
//!    every shape up to a small-model bound (plus beyond-the-bound spot
//!    checks near `usize::MAX`) it proves the row/entry partitions are
//!    non-empty, contiguous, disjoint, fully covering, monotone and (where
//!    promised) balanced, and that the `split_*_mut` carvings observably
//!    cover their buffers exactly once.
//!
//! The crate also hosts the token-level Rust scanner ([`tokenizer`]) that
//! `ses-lint` uses instead of line regexes, and a [`selfcheck`] harness the
//! `ses-verify` CLI runs in CI — with seeded-defect modes proving each
//! engine actually fails when it should.
//!
//! Static vs runtime split: the tape sanitizer (`SES_SANITIZE`) validates
//! the tape *that ran*, with real values; `ses-verify` validates the tape
//! that *would* run, with no values at all. See `docs/CORRECTNESS.md`.

pub mod builder;
pub mod equiv;
pub mod partition;
pub mod selfcheck;
pub mod tape_check;
pub mod tokenizer;

use std::fmt;

/// How bad a finding is. [`Severity::Error`] findings make the CLI exit
/// non-zero; warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: suspicious but not provably wrong (dead compute,
    /// duplicate subgraphs, pruned gradients within budget).
    Warning,
    /// Provably wrong or unprovable-safe: shape mismatch, missing backward,
    /// broken partition, leak budget exceeded.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from either engine.
///
/// `subject` always carries enough context to reproduce the failure: the
/// offending op and node id for tape checks, the partitioner inputs
/// (`n`/`parts`/`indptr`) for partition checks.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Error or warning.
    pub severity: Severity,
    /// Which engine produced it: `"tape-ir"`, `"equiv"` or `"partition"`.
    pub engine: &'static str,
    /// The specific check, e.g. `"shape"`, `"backward-coverage"`,
    /// `"determinism"`, `"leak-budget"`, `"coverage"`, `"disjointness"`.
    pub check: &'static str,
    /// What was being checked (node id + op, or partition inputs).
    pub subject: String,
    /// Human-readable explanation of the finding.
    pub msg: String,
}

impl Diag {
    /// Builds an error finding.
    pub fn error(engine: &'static str, check: &'static str, subject: String, msg: String) -> Self {
        Diag {
            severity: Severity::Error,
            engine,
            check,
            subject,
            msg,
        }
    }

    /// Builds a warning finding.
    pub fn warning(
        engine: &'static str,
        check: &'static str,
        subject: String,
        msg: String,
    ) -> Self {
        Diag {
            severity: Severity::Warning,
            engine,
            check,
            subject,
            msg,
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}/{}] {}: {}",
            self.severity, self.engine, self.check, self.subject, self.msg
        )
    }
}

/// Number of [`Severity::Error`] findings in a diagnostic list.
pub fn error_count(diags: &[Diag]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// Number of [`Severity::Warning`] findings in a diagnostic list.
pub fn warning_count(diags: &[Diag]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count()
}

/// Bumps the shared observability counters for a batch of findings.
pub(crate) fn record_diags(diags: &[Diag]) {
    let errs = error_count(diags) as u64;
    let warns = warning_count(diags) as u64;
    ses_obs::metrics::VERIFY_ERRORS.add(errs);
    ses_obs::metrics::VERIFY_WARNINGS.add(warns);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diag_display_names_engine_check_and_subject() {
        let d = Diag::error(
            "tape-ir",
            "shape",
            "node 3 (op `matmul`)".to_string(),
            "inner dims differ".to_string(),
        );
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("tape-ir/shape"));
        assert!(s.contains("node 3"));
        assert!(s.contains("matmul"));
    }

    #[test]
    fn counts_split_by_severity() {
        let ds = vec![
            Diag::error("tape-ir", "shape", "a".into(), "x".into()),
            Diag::warning("partition", "balance", "b".into(), "y".into()),
            Diag::warning("partition", "balance", "c".into(), "z".into()),
        ];
        assert_eq!(error_count(&ds), 1);
        assert_eq!(warning_count(&ds), 2);
    }
}
