//! `ses-verify` CLI — runs the static verifier self-check and exits
//! non-zero when any engine reports an error.
//!
//! ```text
//! ses-verify                              # CI gate: real artefacts, expect clean
//! ses-verify --seed-defect shape-mismatch # feed a known-bad input, expect errors
//! ```
//!
//! Seeded-defect runs exist so CI can prove the verifier still rejects what
//! it must reject: `ci.sh` asserts they exit non-zero.

use std::process::ExitCode;

use ses_verify::selfcheck::{run, SeededDefect};
use ses_verify::Severity;

fn usage() {
    eprintln!("usage: ses-verify [--seed-defect <kind>]");
    eprintln!("  kinds: {}", SeededDefect::SPELLINGS.join(", "));
}

fn parse_args(args: &[String]) -> Result<Option<SeededDefect>, String> {
    match args {
        [] => Ok(None),
        [flag, kind] if flag == "--seed-defect" => SeededDefect::parse(kind)
            .map(Some)
            .ok_or_else(|| format!("unknown defect kind `{kind}`")),
        [flag] if flag == "--help" || flag == "-h" => Err(String::new()),
        other => Err(format!("unrecognised arguments: {other:?}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defect = match parse_args(&args) {
        Ok(d) => d,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("ses-verify: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };

    if let Some(d) = defect {
        println!("ses-verify: seeded defect {d:?} — errors below are expected");
    }
    let report = run(defect);
    for d in &report.diags {
        match d.severity {
            Severity::Error => eprintln!("{d}"),
            Severity::Warning => println!("{d}"),
        }
    }
    println!(
        "ses-verify: {} tape node(s) verified, {} partition case(s) model-checked, \
         {} error(s), {} warning(s)",
        report.tape_nodes,
        report.partition_cases,
        report.error_count(),
        report.diags.len() - report.error_count()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
