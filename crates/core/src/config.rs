//! SES hyperparameters and ablation switches.

/// Hyperparameters of SES (Section 5.3 of the paper gives the defaults:
/// Adam lr = 3e-3, hidden 128, sample ratio 0.8, margin 1.0; the loss
/// weights α and β and the k-hop radius are swept in Fig. 4).
#[derive(Debug, Clone)]
pub struct SesConfig {
    /// k-hop radius of the structure mask's subgraphs.
    pub k: usize,
    /// Weight of the mask-generator objective in explainable training
    /// (Eq. 9): `α(L_sub + L^m_xent) + (1−α) L_xent`.
    pub alpha: f32,
    /// Weight of the triplet loss in enhanced predictive learning (Eq. 13):
    /// `β L_triplet + (1−β) L_xent`.
    pub beta: f32,
    /// Sample ratio `r` of Algorithm 1 (fraction of sorted neighbours kept
    /// as positives).
    pub sample_ratio: f32,
    /// Triplet margin `m` (Eq. 12).
    pub margin: f32,
    /// Epochs of explainable training (paper: 300).
    pub epochs_explain: usize,
    /// Epochs of enhanced predictive learning (paper: 15).
    pub epochs_epl: usize,
    /// Learning rate for both phases.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// RNG seed.
    pub seed: u64,
    /// Record feature/structure mask snapshots at these explainable-training
    /// epochs (Fig. 7); empty for none.
    pub record_masks_at: Vec<usize>,
    /// Which adjacency the masked re-encoding loss `L^m_xent` aggregates
    /// over (see [`MaskedGraph`]).
    pub masked_graph: MaskedGraph,
    /// Weight of the subgraph loss inside the mask objective: the Eq. 9
    /// mask term becomes `w·L_sub + L^m_xent`. The paper weighs them
    /// equally (`1.0`); on benchmarks where L_sub's push-all-edges-to-one
    /// saturates the scorer before the consistency gradient can rank edges,
    /// a smaller weight lets `L^m_xent` dominate the ordering.
    pub sub_loss_weight: f32,
    /// Cap on the number of k-hop neighbours scored per node (`None` for
    /// the full `A^{(k)}`). Dense graphs blow `A^{(k)}` up towards `|V|²`
    /// entries — the memory cost the paper defers to future work; capping
    /// keeps the nearest `cap` neighbours per node (BFS order), bounding the
    /// mask at `O(|V|·cap)` entries.
    pub max_khop_neighbors: Option<usize>,
    /// Mask-size penalty `λ · mean(M_s)` added to the mask objective
    /// (default 0: the paper's Eq. 9 has no sparsity term). The subgraph
    /// loss labels *every* k-hop pair positive, so attachment edges and
    /// motif edges saturate identically; the size penalty — standard in
    /// GNNExplainer/PGExplainer — creates pressure that only the
    /// classification-consistency gradient (`L^m_xent`) can counteract,
    /// letting decision-relevant edges stay high. Used by the explanation
    /// benchmarks (Table 4).
    pub mask_size_weight: f32,
    /// Restrict negative samples to nodes with a different label
    /// (Section 4.1.2). On datasets whose motif roles span several classes
    /// the filter biases the scorer against minority classes; switching it
    /// off samples uniformly from the k-hop complement (Algorithm 1's
    /// caption reads this way).
    pub label_filtered_negatives: bool,
    /// Divergence detection / checkpoint / rollback policy for the enhanced
    /// predictive learning phase. The default
    /// ([`ses_resilience::RecoveryPolicy::disabled`]) keeps `fit` bit-exact
    /// with its pre-resilience behaviour; see `docs/ROBUSTNESS.md`.
    pub recovery: ses_resilience::RecoveryPolicy,
    /// Explicit fault to inject into the EPL phase (tests/drills). `None`
    /// falls back to the ambient `SES_FAULT` environment spec.
    pub fault: Option<ses_resilience::FaultSpec>,
    /// Ablation switches (all-on for full SES).
    pub variant: SesVariant,
}

impl Default for SesConfig {
    fn default() -> Self {
        Self {
            k: 2,
            alpha: 0.5,
            beta: 0.5,
            sample_ratio: 0.8,
            margin: 1.0,
            epochs_explain: 100,
            epochs_epl: 15,
            lr: 3e-3,
            weight_decay: 5e-4,
            seed: 0,
            record_masks_at: Vec::new(),
            masked_graph: MaskedGraph::default(),
            sub_loss_weight: 1.0,
            max_khop_neighbors: None,
            mask_size_weight: 0.0,
            label_filtered_negatives: true,
            recovery: ses_resilience::RecoveryPolicy::disabled(),
            fault: None,
            variant: SesVariant::default(),
        }
    }
}

/// Aggregation graph of the masked re-encoding loss (Eq. 8).
///
/// The paper writes `Z_m = GE(M_f ⊙ X, M̂_s ⊙ A^{(k)})`. On dense graphs the
/// k-hop adjacency approaches completeness, which makes the masked path a
/// near-global mean aggregation: inseparable, and its gradient poisons the
/// shared encoder (observed on the PolBlogs stand-in, where 2-hop covers
/// ~50% of all pairs). `OneHop` applies the structure mask to the backbone's
/// own prediction adjacency `A` — the regime of Eq. 10 — which keeps the
/// consistency loss aligned with the decision process on every graph, so it
/// is the default. `KHop` is the literal Eq. 8 and is fine on sparse graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaskedGraph {
    /// Mask over the 1-hop adjacency `A` (default; matches Eq. 10).
    #[default]
    OneHop,
    /// Mask over the k-hop adjacency `A^{(k)}` (literal Eq. 8).
    KHop,
}

impl SesConfig {
    /// The paper's full training schedule (300 + 15 epochs).
    pub fn paper_schedule(mut self) -> Self {
        self.epochs_explain = 300;
        self.epochs_epl = 15;
        self
    }
}

/// Ablation switches for Tables 5 and 10. Every flag defaults to `true`
/// (full SES); switching one off reproduces the corresponding `-{...}` row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SesVariant {
    /// `-{M_f}` when false: the feature mask is not applied.
    pub use_feature_mask: bool,
    /// `-{M̂_s}` when false: the structure mask is not applied in enhanced
    /// predictive learning / evaluation.
    pub use_structure_mask: bool,
    /// `-{L_xent}` when false: cross-entropy is dropped from the enhanced
    /// predictive learning objective (Eq. 13 keeps only the triplet term).
    pub use_xent_epl: bool,
    /// `-{Triplet}` when false: the triplet loss is dropped (Eq. 13 keeps
    /// only cross-entropy).
    pub use_triplet: bool,
    /// `-{L^m_xent}` when false: the masked-reencoding consistency loss is
    /// dropped from explainable training (Eq. 8/9), the Table 5 ablation.
    pub use_masked_xent: bool,
}

impl Default for SesVariant {
    fn default() -> Self {
        Self {
            use_feature_mask: true,
            use_structure_mask: true,
            use_xent_epl: true,
            use_triplet: true,
            use_masked_xent: true,
        }
    }
}

impl SesVariant {
    /// Human-readable variant label matching the paper's table rows.
    pub fn label(&self) -> String {
        let mut missing = Vec::new();
        if !self.use_feature_mask {
            missing.push("M_f");
        }
        if !self.use_structure_mask {
            missing.push("M̂_s");
        }
        if !self.use_xent_epl {
            missing.push("L_xent");
        }
        if !self.use_triplet {
            missing.push("Triplet");
        }
        if !self.use_masked_xent {
            missing.push("L^m_xent");
        }
        if missing.is_empty() {
            "SES".to_string()
        } else {
            format!("SES -{{{}}}", missing.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = SesConfig::default();
        assert_eq!(c.sample_ratio, 0.8);
        assert_eq!(c.margin, 1.0);
        assert_eq!(c.lr, 3e-3);
        assert_eq!(c.k, 2);
        let p = c.paper_schedule();
        assert_eq!(p.epochs_explain, 300);
        assert_eq!(p.epochs_epl, 15);
    }

    #[test]
    fn variant_labels() {
        assert_eq!(SesVariant::default().label(), "SES");
        let v = SesVariant {
            use_triplet: false,
            ..Default::default()
        };
        assert_eq!(v.label(), "SES -{Triplet}");
        let v2 = SesVariant {
            use_feature_mask: false,
            use_triplet: false,
            ..Default::default()
        };
        assert!(v2.label().contains("M_f") && v2.label().contains("Triplet"));
    }
}
