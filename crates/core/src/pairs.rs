//! Algorithm 1: construction of positive–negative node pairs from the
//! learned structure mask.
//!
//! For each node `v`, its k-hop neighbours are sorted by mask weight; the
//! top `r` fraction become the positive set `S^p(v)`, and an equal number of
//! nodes drawn from the negative set `P_n(v)` become `S^n(v)`. The triplet
//! loss (Eq. 12) then consumes flat `(anchor, positive, negative)` triples.

use rand::Rng;
use ses_graph::NegativeSets;
use ses_tensor::CsrStructure;

/// Positive/negative sample sets per node plus the flattened triples used by
/// the triplet loss.
#[derive(Debug, Clone)]
pub struct PairSets {
    /// `S^p(v)` for each node.
    pub positives: Vec<Vec<usize>>,
    /// `S^n(v)` for each node.
    pub negatives: Vec<Vec<usize>>,
    /// Flattened anchor indices (node `v` repeated `|S^p(v)|` times).
    pub anchor_idx: Vec<usize>,
    /// Flattened positive indices.
    pub pos_idx: Vec<usize>,
    /// Flattened negative indices.
    pub neg_idx: Vec<usize>,
}

impl PairSets {
    /// Number of triples.
    pub fn len(&self) -> usize {
        self.anchor_idx.len()
    }

    /// True when no triples were produced.
    pub fn is_empty(&self) -> bool {
        self.anchor_idx.is_empty()
    }
}

/// Runs Algorithm 1. `mask_weights` are the structure-mask values aligned
/// with `khop`'s entries; `ratio` is the sample ratio `r`.
pub fn construct_pairs(
    khop: &CsrStructure,
    mask_weights: &[f32],
    negatives: &NegativeSets,
    ratio: f32,
    rng: &mut impl Rng,
) -> PairSets {
    assert_eq!(
        mask_weights.len(),
        khop.nnz(),
        "construct_pairs: weight length mismatch"
    );
    assert!(
        (0.0..=1.0).contains(&ratio),
        "construct_pairs: ratio must be in [0,1]"
    );
    let n = khop.n_rows();
    let mut positives = Vec::with_capacity(n);
    let mut neg_sets = Vec::with_capacity(n);
    let mut anchor_idx = Vec::new();
    let mut pos_idx = Vec::new();
    let mut neg_idx = Vec::new();
    let mut scored: Vec<(f32, usize)> = Vec::new();

    for v in 0..n {
        scored.clear();
        for p in khop.row_range(v) {
            scored.push((mask_weights[p], khop.indices()[p]));
        }
        // sort neighbours by weight, descending
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let num_sample = ((ratio * scored.len() as f32).floor() as usize).min(scored.len());
        let sp: Vec<usize> = scored.iter().take(num_sample).map(|&(_, u)| u).collect();
        let sn = negatives.draw(v, num_sample, rng);
        // `draw` returns fewer only when P_n(v) is empty; drop the node then.
        let usable = sp.len().min(sn.len());
        for j in 0..usable {
            anchor_idx.push(v);
            pos_idx.push(sp[j]);
            neg_idx.push(sn[j]);
        }
        positives.push(sp);
        neg_sets.push(sn);
    }
    PairSets {
        positives,
        negatives: neg_sets,
        anchor_idx,
        pos_idx,
        neg_idx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use ses_graph::{khop_structure, Graph, NegativeSets};
    use ses_tensor::Matrix;

    fn fixture() -> (
        Graph,
        std::sync::Arc<CsrStructure>,
        NegativeSets,
        rand::rngs::StdRng,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // two separate 4-cliques
        let mut edges = Vec::new();
        for base in [0, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let g = Graph::new(8, &edges, Matrix::zeros(8, 2), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let khop = khop_structure(&g, 1);
        let negs = NegativeSets::sample(&khop, Some(g.labels()), &mut rng);
        (g, khop, negs, rng)
    }

    #[test]
    fn positives_are_highest_weighted_neighbors() {
        let (_, khop, negs, mut rng) = fixture();
        // weights: give node 0's edge to node 3 the highest weight
        let mut w = vec![0.1f32; khop.nnz()];
        let p03 = khop.find(0, 3).unwrap();
        w[p03] = 0.9;
        let pairs = construct_pairs(&khop, &w, &negs, 0.4, &mut rng);
        // node 0 has 3 neighbours; 0.4*3 = 1.2 -> 1 positive, the heaviest
        assert_eq!(pairs.positives[0], vec![3]);
    }

    #[test]
    fn triples_are_consistent() {
        let (g, khop, negs, mut rng) = fixture();
        let w: Vec<f32> = (0..khop.nnz())
            .map(|i| (i as f32 * 0.37).sin().abs())
            .collect();
        let pairs = construct_pairs(&khop, &w, &negs, 0.8, &mut rng);
        assert_eq!(pairs.anchor_idx.len(), pairs.pos_idx.len());
        assert_eq!(pairs.anchor_idx.len(), pairs.neg_idx.len());
        assert!(!pairs.is_empty());
        for t in 0..pairs.len() {
            let (a, p, n) = (pairs.anchor_idx[t], pairs.pos_idx[t], pairs.neg_idx[t]);
            assert!(
                khop.find(a, p).is_some(),
                "positive must be a k-hop neighbour"
            );
            assert!(
                khop.find(a, n).is_none(),
                "negative must not be a k-hop neighbour"
            );
            assert_ne!(g.labels()[a], g.labels()[n], "negatives filtered by label");
        }
    }

    #[test]
    fn ratio_controls_sample_count() {
        let (_, khop, negs, mut rng) = fixture();
        let w = vec![0.5f32; khop.nnz()];
        let full = construct_pairs(&khop, &w, &negs, 1.0, &mut rng);
        let half = construct_pairs(&khop, &w, &negs, 0.5, &mut rng);
        assert!(half.len() < full.len());
        // every node has 3 neighbours in a 4-clique: ratio 1.0 -> 3 each
        assert_eq!(full.positives[0].len(), 3);
        assert_eq!(half.positives[0].len(), 1);
    }

    #[test]
    fn zero_ratio_produces_no_pairs() {
        let (_, khop, negs, mut rng) = fixture();
        let w = vec![0.5f32; khop.nnz()];
        let pairs = construct_pairs(&khop, &w, &negs, 0.0, &mut rng);
        assert!(pairs.is_empty());
    }
}
