//! `ses-core` — the SES model: a **S**elf-**E**xplained and self-**S**upervised
//! graph neural network (Huang et al., ICDE 2024).
//!
//! SES trains in two phases over one shared graph encoder:
//!
//! 1. **Explainable training** — a global [`MaskGenerator`] is co-trained
//!    with the encoder. It emits a feature mask `M_f` and a structure mask
//!    `M_s` over the k-hop adjacency; a subgraph loss (Eq. 7) pulls real
//!    k-hop pairs towards 1 and sampled non-neighbours towards 0, while a
//!    masked re-encoding loss (Eq. 8) keeps the masks consistent with the
//!    encoder's own aggregation.
//! 2. **Enhanced predictive learning** — the learned masks build
//!    positive/negative node pairs (Algorithm 1) driving a triplet loss
//!    (Eq. 12) that feeds the explanation signal back into prediction.
//!
//! # Example
//! ```no_run
//! use rand::{rngs::StdRng, SeedableRng};
//! use ses_core::{fit, MaskGenerator, SesConfig};
//! use ses_data::{realworld, Profile, Splits};
//! use ses_gnn::Gcn;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = realworld::cora_like(Profile::Fast, &mut rng);
//! let splits = Splits::classification(data.graph.n_nodes(), &mut rng);
//! let encoder = Gcn::new(data.graph.n_features(), 128, data.graph.n_classes(), &mut rng);
//! let mask_gen = MaskGenerator::new(128, data.graph.n_features(), &mut rng);
//! let trained = fit(encoder, mask_gen, &data.graph, &splits, &SesConfig::default());
//! println!("test accuracy: {:.2}%", 100.0 * trained.report.test_acc);
//! println!("top neighbours of node 0: {:?}", trained.explanations.ranked_neighbors(0));
//! ```

pub mod config;
pub mod explanation;
pub mod mask;
pub mod model;
pub mod pairs;

pub use config::{MaskedGraph, SesConfig, SesVariant};
pub use explanation::Explanations;
pub use mask::{MaskGenerator, MaskOutput};
pub use model::{
    explain_step_annotated, explain_step_ir, fit, quickstart_step_ir, run_epl, ExplainStepIr,
    MaskSnapshot, SesReport, TrainedSes,
};
pub use pairs::{construct_pairs, PairSets};
