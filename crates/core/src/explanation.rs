//! Instance-level explanations produced by SES (Section 4.2): the feature
//! explanation `E_feat = M_f ⊙ X` and the substructure explanation
//! `E_sub = M̂_s ⊙ A^{(k)}`, plus the neighbour-ranking view used by the
//! paper's case studies (Fig. 8).

use std::sync::Arc;

use ses_tensor::{CsrStructure, Matrix};

/// Explanations for every node at once (SES's global mask makes them
/// available in one shot, unlike per-instance post-hoc explainers).
#[derive(Debug, Clone)]
pub struct Explanations {
    /// Feature mask `M_f` (`n × F`), entries in (0, 1).
    pub feature_mask: Matrix,
    /// k-hop structure the structure mask is defined over.
    pub khop: Arc<CsrStructure>,
    /// Structure-mask weights aligned with `khop`'s entries.
    pub structure_weights: Vec<f32>,
}

impl Explanations {
    /// `E_feat = M_f ⊙ X`: importance-weighted node features.
    pub fn feature_explanation(&self, features: &Matrix) -> Matrix {
        self.feature_mask.hadamard(features)
    }

    /// The weight the structure mask assigns to the pair `(center, neighbor)`
    /// (zero when outside the k-hop neighbourhood).
    pub fn edge_weight(&self, center: usize, neighbor: usize) -> f32 {
        self.khop
            .find(center, neighbor)
            .map_or(0.0, |p| self.structure_weights[p])
    }

    /// Neighbours of `center` ranked by descending mask weight — the
    /// case-study ranking of Fig. 8.
    pub fn ranked_neighbors(&self, center: usize) -> Vec<(usize, f32)> {
        let mut out: Vec<(usize, f32)> = self
            .khop
            .row_range(center)
            .map(|p| (self.khop.indices()[p], self.structure_weights[p]))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// Top-k most important feature dimensions of `node`, ranked by mask
    /// weight restricted to non-zero input features.
    pub fn top_features(&self, node: usize, features: &Matrix, k: usize) -> Vec<(usize, f32)> {
        let mut dims: Vec<(usize, f32)> = (0..features.cols())
            .filter(|&j| features[(node, j)].abs().to_bits() != 0)
            .map(|j| (j, self.feature_mask[(node, j)]))
            .collect();
        dims.sort_by(|a, b| b.1.total_cmp(&a.1));
        dims.truncate(k);
        dims
    }

    /// Per-edge explanation scores for the subgraph edges of `center`'s
    /// k-hop neighbourhood, as `(u, v, weight)` triples — what Fig. 6 plots.
    pub fn subgraph_explanation(&self, center: usize) -> Vec<(usize, usize, f32)> {
        self.khop
            .row_range(center)
            .map(|p| (center, self.khop.indices()[p], self.structure_weights[p]))
            .collect()
    }

    /// Scores every *stored* edge of an evaluation structure by averaging the
    /// mask weight of both orientations — used for explanation-AUC scoring
    /// against ground-truth motif edges (Table 4).
    pub fn score_edges(&self, edges: &[(usize, usize)]) -> Vec<f32> {
        edges
            .iter()
            .map(|&(u, v)| 0.5 * (self.edge_weight(u, v) + self.edge_weight(v, u)))
            .collect()
    }

    /// Serialises the structure explanation as CSV (`center,neighbor,weight`
    /// per k-hop entry) — the exchange format the bench harness and any
    /// downstream tooling consume.
    pub fn structure_to_csv(&self) -> String {
        let mut out = String::from("center,neighbor,weight\n");
        for (r, c, p) in self.khop.iter_entries() {
            out.push_str(&format!("{r},{c},{}\n", self.structure_weights[p]));
        }
        out
    }

    /// Serialises the feature explanation of one node as CSV
    /// (`feature,weight`), restricted to its non-zero input features.
    pub fn features_to_csv(&self, node: usize, features: &Matrix) -> String {
        let mut out = String::from("feature,weight\n");
        for j in 0..features.cols() {
            if features[(node, j)].abs().to_bits() != 0 {
                out.push_str(&format!("{j},{}\n", self.feature_mask[(node, j)]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Explanations {
        let khop = Arc::new(CsrStructure::from_edges(
            3,
            3,
            &[(0, 1), (0, 2), (1, 0), (2, 0)],
        ));
        Explanations {
            feature_mask: Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.5, 0.5, 0.2, 0.8]),
            khop,
            structure_weights: vec![0.7, 0.3, 0.6, 0.4],
        }
    }

    #[test]
    fn feature_explanation_is_hadamard() {
        let e = fixture();
        let x = Matrix::from_vec(3, 2, vec![1.0, 2.0, 0.0, 4.0, 5.0, 0.0]);
        let ef = e.feature_explanation(&x);
        assert!((ef[(0, 0)] - 0.9).abs() < 1e-6);
        assert!((ef[(0, 1)] - 0.2).abs() < 1e-6);
        assert_eq!(ef[(1, 0)], 0.0);
    }

    #[test]
    fn ranked_neighbors_descending() {
        let e = fixture();
        let r = e.ranked_neighbors(0);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 1);
        assert!((r[0].1 - 0.7).abs() < 1e-6);
        assert_eq!(r[1].0, 2);
    }

    #[test]
    fn edge_weight_zero_outside_khop() {
        let e = fixture();
        assert_eq!(e.edge_weight(1, 2), 0.0);
        assert!((e.edge_weight(0, 1) - 0.7).abs() < 1e-6);
    }

    #[test]
    fn top_features_skip_zero_inputs() {
        let e = fixture();
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
        let top = e.top_features(0, &x, 2);
        assert_eq!(top.len(), 1, "node 0 has one nonzero feature");
        assert_eq!(top[0].0, 0);
    }

    #[test]
    fn score_edges_symmetric_average() {
        let e = fixture();
        let scores = e.score_edges(&[(0, 1), (1, 2)]);
        assert!((scores[0] - 0.5 * (0.7 + 0.6)).abs() < 1e-6);
        assert_eq!(scores[1], 0.0);
    }

    #[test]
    fn csv_serialisation() {
        let e = fixture();
        let s = e.structure_to_csv();
        assert!(s.starts_with("center,neighbor,weight\n"));
        assert_eq!(s.lines().count(), 1 + e.khop.nnz());
        assert!(s.contains("0,1,0.7"));
        let x = Matrix::from_vec(3, 2, vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0]);
        let f = e.features_to_csv(0, &x);
        assert_eq!(f.lines().count(), 2, "one nonzero feature for node 0");
        assert!(f.contains("0,0.9"));
    }
}
