//! The SES global mask generator (Section 4.1.2, Fig. 3).
//!
//! Produces, from the first-layer representation `H`:
//! * a **feature mask** `M_f ∈ (0,1)^{N×F}` via an MLP (Eq. 3);
//! * a **structure mask** `M_s ∈ (0,1)^{N_k×1}` scoring every edge of the
//!   k-hop adjacency via a shared linear scorer over concatenated endpoint
//!   features (Eq. 4);
//! * a **negative structure mask** `M_sneg` scoring sampled non-neighbour
//!   pairs, used by the subgraph loss (Eq. 7).

use std::sync::Arc;

use rand::rngs::StdRng;
use ses_tensor::{init, CsrStructure, Matrix, Param, Tape, Var};

/// Learnable parameters of the mask generator (`θ_m` in the paper).
#[derive(Debug, Clone)]
pub struct MaskGenerator {
    // feature-mask MLP: hidden -> hidden -> F
    mlp_w1: Param,
    mlp_b1: Param,
    mlp_w2: Param,
    mlp_b2: Param,
    // structure scorer: cat(h_i, h_k) -> 1 (shared W, b of Eq. 4)
    w_s: Param,
    b_s: Param,
    hidden: usize,
    feat_dim: usize,
    /// When false, the scorer omits the `h_i ⊙ h_k` interaction block —
    /// the paper's literal additive concatenation (see DESIGN.md).
    interaction: bool,
}

/// The masks produced during one forward pass (tape variables).
pub struct MaskOutput {
    /// Feature mask `M_f` (`n × F`).
    pub feature: Var,
    /// Structure mask `M_s` over the k-hop edges (`nnz × 1`).
    pub structure: Var,
    /// Negative structure mask `M_sneg` (`nnz × 1`).
    pub structure_neg: Var,
    /// Parameter leaves recorded on the tape, aligned with
    /// [`MaskGenerator::params_mut`].
    pub param_vars: Vec<Var>,
}

impl MaskGenerator {
    /// Creates a mask generator for encoders with first-layer width
    /// `hidden` and input feature dimension `feat_dim`.
    ///
    /// The structure scorer consumes `[h_i ; h_k ; h_i ⊙ h_k]`: the paper's
    /// concatenation (Eq. 4) plus an element-wise interaction block. The
    /// purely additive concatenation scorer factorises as
    /// `f(h_i) + g(h_k)`, which cannot express the pairwise similarity the
    /// paper's link-prediction motivation calls for ("make the node features
    /// within the neighborhood more similar and distinguish them from
    /// features outside"); the Hadamard block is the minimal (diagonal
    /// bilinear) interaction that can.
    pub fn new(hidden: usize, feat_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            mlp_w1: Param::new(init::xavier_uniform(hidden, hidden, rng)),
            mlp_b1: Param::new(Matrix::zeros(1, hidden)),
            mlp_w2: Param::new(init::xavier_uniform(hidden, feat_dim, rng)),
            mlp_b2: Param::new(Matrix::zeros(1, feat_dim)),
            w_s: Param::new(init::xavier_uniform(3 * hidden, 1, rng)),
            b_s: Param::new(Matrix::zeros(1, 1)),
            hidden,
            feat_dim,
            interaction: true,
        }
    }

    /// The paper's literal additive scorer `σ(W·[h_i ; h_k] + b)` — kept for
    /// the design-choice ablation bench. It factorises as `f(h_i) + g(h_k)`
    /// and cannot express pairwise similarity.
    pub fn additive(hidden: usize, feat_dim: usize, rng: &mut StdRng) -> Self {
        let mut m = Self::new(hidden, feat_dim, rng);
        m.w_s = Param::new(init::xavier_uniform(2 * hidden, 1, rng));
        m.interaction = false;
        m
    }

    /// Forward pass. `h` is the first-layer encoder output on the tape;
    /// `khop` is the k-hop structure whose entries are scored;
    /// `neg_endpoints` are the `(anchor, negative)` index arrays (same
    /// length as `khop.nnz()`) for the negative mask.
    #[allow(clippy::too_many_arguments)] // the five index arrays are one precomputed pair-set
    pub fn forward(
        &self,
        tape: &mut Tape,
        h: Var,
        khop: &Arc<CsrStructure>,
        khop_rows: &Arc<Vec<usize>>,
        khop_cols: &Arc<Vec<usize>>,
        neg_anchor: &Arc<Vec<usize>>,
        neg_other: &Arc<Vec<usize>>,
    ) -> MaskOutput {
        assert_eq!(khop_rows.len(), khop.nnz());
        assert_eq!(neg_anchor.len(), neg_other.len());
        let w1 = self.mlp_w1.watch(tape);
        let b1 = self.mlp_b1.watch(tape);
        let w2 = self.mlp_w2.watch(tape);
        let b2 = self.mlp_b2.watch(tape);
        let ws = self.w_s.watch(tape);
        let bs = self.b_s.watch(tape);

        // Eq. (3): M_f = sigmoid(MLP(H))
        let m1 = tape.linear(h, w1, b1);
        let m1 = tape.relu(m1);
        let m2 = tape.linear(m1, w2, b2);
        let feature = tape.sigmoid(m2);

        // Eq. (4): M_s = sigmoid(W · cat(h_i, h_k) + b) per k-hop edge
        let structure = Self::score_pairs(tape, h, khop_rows, khop_cols, ws, bs, self.interaction);
        // negative pairs
        let structure_neg =
            Self::score_pairs(tape, h, neg_anchor, neg_other, ws, bs, self.interaction);

        MaskOutput {
            feature,
            structure,
            structure_neg,
            param_vars: vec![w1, b1, w2, b2, ws, bs],
        }
    }

    /// Scores node pairs: `sigmoid(cat(h[a], h[b], h[a] ⊙ h[b]) · w + b)`.
    fn score_pairs(
        tape: &mut Tape,
        h: Var,
        a_idx: &Arc<Vec<usize>>,
        b_idx: &Arc<Vec<usize>>,
        w: Var,
        b: Var,
        interaction: bool,
    ) -> Var {
        let ha = tape.gather_rows(h, a_idx.clone());
        let hb = tape.gather_rows(h, b_idx.clone());
        let mut cat = tape.concat_cols(ha, hb);
        if interaction {
            let prod = tape.mul(ha, hb);
            cat = tape.concat_cols(cat, prod);
        }
        let score = tape.linear(cat, w, b);
        tape.sigmoid(score)
    }

    /// Mutable parameter list (`θ_m`), stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.mlp_w1,
            &mut self.mlp_b1,
            &mut self.mlp_w2,
            &mut self.mlp_b2,
            &mut self.w_s,
            &mut self.b_s,
        ]
    }

    /// Snapshot of parameter values.
    pub fn param_values(&self) -> Vec<Matrix> {
        [
            &self.mlp_w1,
            &self.mlp_b1,
            &self.mlp_w2,
            &self.mlp_b2,
            &self.w_s,
            &self.b_s,
        ]
        .iter()
        .map(|p| p.value.clone())
        .collect()
    }

    /// First-layer width this generator expects.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Feature dimensionality of the produced feature mask.
    pub fn feat_dim(&self) -> usize {
        self.feat_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn khop_fixture() -> (Arc<CsrStructure>, Arc<Vec<usize>>, Arc<Vec<usize>>) {
        let s = Arc::new(CsrStructure::from_edges(
            4,
            4,
            &[(0, 1), (1, 0), (1, 2), (2, 1)],
        ));
        let (r, c) = s.entry_endpoints();
        (s, Arc::new(r), Arc::new(c))
    }

    #[test]
    fn forward_shapes_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let gen = MaskGenerator::new(6, 5, &mut rng);
        let mut tape = Tape::new();
        let h = tape.leaf(init::normal(4, 6, 1.0, &mut rng));
        let (khop, rows, cols) = khop_fixture();
        let neg_a = Arc::new(vec![0usize, 1, 1, 2]);
        let neg_b = Arc::new(vec![3usize, 3, 3, 0]);
        let out = gen.forward(&mut tape, h, &khop, &rows, &cols, &neg_a, &neg_b);
        assert_eq!(tape.shape(out.feature), (4, 5));
        assert_eq!(tape.shape(out.structure), (4, 1));
        assert_eq!(tape.shape(out.structure_neg), (4, 1));
        // sigmoid outputs in (0, 1)
        for &v in tape.value(out.feature).as_slice() {
            assert!(v > 0.0 && v < 1.0);
        }
        for &v in tape.value(out.structure).as_slice() {
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn gradients_reach_all_mask_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let gen = MaskGenerator::new(4, 3, &mut rng);
        let mut tape = Tape::new();
        let h = tape.leaf(init::normal(4, 4, 1.0, &mut rng));
        let (khop, rows, cols) = khop_fixture();
        let neg_a = Arc::new(vec![0usize, 1, 1, 2]);
        let neg_b = Arc::new(vec![3usize, 3, 3, 0]);
        let out = gen.forward(&mut tape, h, &khop, &rows, &cols, &neg_a, &neg_b);
        // combine everything into one scalar
        let f_mean = tape.mean_all(out.feature);
        let s_mean = tape.mean_all(out.structure);
        let n_mean = tape.mean_all(out.structure_neg);
        let t1 = tape.add(f_mean, s_mean);
        let loss = tape.add(t1, n_mean);
        tape.backward(loss);
        for (i, &pv) in out.param_vars.iter().enumerate() {
            assert!(tape.grad(pv).is_some(), "mask param {i} missing grad");
        }
        assert!(
            tape.grad(h).is_some(),
            "grad must flow back into H (co-training)"
        );
    }

    #[test]
    fn identical_pairs_get_identical_scores() {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = MaskGenerator::new(4, 3, &mut rng);
        let mut tape = Tape::new();
        let h = tape.leaf(init::normal(4, 4, 1.0, &mut rng));
        let (khop, rows, cols) = khop_fixture();
        // duplicate pair (0,1) at positions 0 — and compare with scoring it
        // again via the negative path
        let neg_a = Arc::new(vec![0usize; 4]);
        let neg_b = Arc::new(vec![1usize; 4]);
        let out = gen.forward(&mut tape, h, &khop, &rows, &cols, &neg_a, &neg_b);
        let pos = tape.value(out.structure)[(0, 0)]; // edge (0,1)
        let neg = tape.value(out.structure_neg)[(0, 0)]; // same pair
        assert!((pos - neg).abs() < 1e-6, "shared scorer must be consistent");
    }
}
