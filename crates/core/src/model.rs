//! The SES model: explainable training (phase 1) followed by enhanced
//! predictive learning (phase 2), sharing one graph encoder (Algorithm 2).

use std::sync::Arc;
use std::time::Duration;

use ses_obs::Stopwatch;

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses_data::Splits;
use ses_gnn::{AdjView, Encoder, ForwardCtx};
use ses_graph::{khop_structure, khop_structure_capped, Graph, NegativeSets};
use ses_metrics::accuracy;
use ses_resilience::{fault, FaultKind, RecoveryManager, TrainCheckpoint, Verdict};
use ses_tensor::{Adam, CsrStructure, Matrix, Optimizer, Tape, Var};

use crate::config::SesConfig;
use crate::explanation::Explanations;
use crate::mask::MaskGenerator;
use crate::pairs::{construct_pairs, PairSets};

/// A feature/structure mask snapshot taken during explainable training
/// (Fig. 7).
#[derive(Debug, Clone)]
pub struct MaskSnapshot {
    /// Epoch the snapshot was taken at.
    pub epoch: usize,
    /// Feature mask `M_f` at that epoch.
    pub feature_mask: Matrix,
    /// Structure-mask weights over the k-hop entries at that epoch.
    pub structure_weights: Vec<f32>,
}

/// Metrics and timings from a full SES run.
#[derive(Debug, Clone)]
pub struct SesReport {
    /// Test accuracy of the final (phase-2) model.
    pub test_acc: f64,
    /// Test accuracy measured right after explainable training (before the
    /// contrastive phase) — isolates the phase-2 gain.
    pub test_acc_after_et: f64,
    /// Test accuracy of the *plain* (unmasked) forward after explainable
    /// training — the prediction quality independent of the masks (used on
    /// explanation benchmarks, where sparse masks are tuned for Table 4
    /// rather than for Eq. 10 prediction).
    pub test_acc_plain: f64,
    /// Best validation accuracy observed.
    pub val_acc: f64,
    /// Wall-clock time of explainable training — the paper's "inference
    /// time" for explanation generation (Tables 6–7).
    pub explain_time: Duration,
    /// Wall-clock time of enhanced predictive learning.
    pub epl_time: Duration,
    /// Wall-clock time of Algorithm 1 (Table 8).
    pub pair_time: Duration,
    /// Per-epoch training loss during explainable training.
    pub et_loss_curve: Vec<f32>,
    /// Per-epoch validation accuracy during explainable training.
    pub et_val_curve: Vec<f64>,
    /// Per-epoch training loss during enhanced predictive learning.
    pub epl_loss_curve: Vec<f32>,
    /// Mask snapshots at the requested epochs.
    pub mask_snapshots: Vec<MaskSnapshot>,
}

/// A trained SES model: the fitted encoder, its explanations, predictions
/// and report.
pub struct TrainedSes<E: Encoder> {
    /// The fitted graph encoder (`θ_e`).
    pub encoder: E,
    /// The fitted mask generator (`θ_m`).
    pub mask_generator: MaskGenerator,
    /// Global instance-level explanations.
    pub explanations: Explanations,
    /// Final argmax predictions for every node (masked forward).
    pub predictions: Vec<usize>,
    /// Final hidden-layer embeddings (`n × hidden`).
    pub embeddings: Matrix,
    /// Metrics and timings.
    pub report: SesReport,
}

/// Pre-computed graph context shared by both phases.
struct SesContext {
    adj: AdjView,
    khop: Arc<CsrStructure>,
    khop_view: AdjView,
    khop_rows: Arc<Vec<usize>>,
    khop_cols: Arc<Vec<usize>>,
    /// gather-map lifting `[M_s ; 1]` onto the khop view entries
    khop_lift: Arc<Vec<usize>>,
    /// gather-map lifting `[M_s ; 1]` onto the 1-hop view entries
    onehop_lift: Arc<Vec<usize>>,
    negatives: NegativeSets,
    labels: Arc<Vec<usize>>,
    train_idx: Arc<Vec<usize>>,
}

impl SesContext {
    fn build(graph: &Graph, splits: &Splits, config: &SesConfig, rng: &mut StdRng) -> Self {
        let adj = AdjView::of_graph(graph);
        let khop = match config.max_khop_neighbors {
            Some(cap) => khop_structure_capped(graph, config.k, cap),
            None => khop_structure(graph, config.k),
        };
        let khop_view = AdjView::from_structure(&khop);
        let (rows, cols) = khop.entry_endpoints();
        let label_filter = config.label_filtered_negatives.then(|| graph.labels());
        let negatives = NegativeSets::sample(&khop, label_filter, rng);
        let khop_lift = Arc::new(build_lift_map(&khop, &khop_view));
        let onehop_lift = Arc::new(build_lift_map(&khop, &adj));
        Self {
            adj,
            khop: khop.clone(),
            khop_view,
            khop_rows: Arc::new(rows),
            khop_cols: Arc::new(cols),
            khop_lift,
            onehop_lift,
            negatives,
            labels: Arc::new(graph.labels().to_vec()),
            train_idx: Arc::new(splits.train.clone()),
        }
    }
}

/// Builds the gather map that lifts the stacked vector `[M_s ; ones(n)]`
/// (k-hop edge weights followed by per-node self-loop slots) onto a view's
/// entry layout. Self-loops map to the appended ones block; so do view edges
/// absent from the (possibly neighbour-capped) k-hop structure — unscored
/// edges keep the neutral weight 1.
fn build_lift_map(khop: &CsrStructure, view: &AdjView) -> Vec<usize> {
    let nnz_khop = khop.nnz();
    view.structure()
        .iter_entries()
        .map(|(r, c, _)| {
            if r == c {
                nnz_khop + r
            } else {
                khop.find(r, c).unwrap_or(nnz_khop + r)
            }
        })
        .collect()
}

/// Telemetry digest of a mask matrix: `(mean activation, fraction of
/// entries below 0.5)` — the latter is "sparsity" in the paper's sense of
/// suppressed features/edges. Only computed when the JSONL sink is active.
fn mask_stats(m: &Matrix) -> (f64, f64) {
    let s = m.as_slice();
    if s.is_empty() {
        return (0.0, 0.0);
    }
    let mut sum = 0.0f64;
    let mut below = 0u64;
    for &v in s {
        sum += f64::from(v);
        if v < 0.5 {
            below += 1;
        }
    }
    let n = s.len() as u64;
    // lint:allow(no-f64-in-kernels): reporting arithmetic, not a kernel
    (sum / n as f64, below as f64 / n as f64)
}

/// Lifts the structure-mask variable onto a view via the precomputed gather
/// map: self-loop slots read from an appended constant-one block.
fn lift_mask(tape: &mut Tape, ms: Var, n_nodes: usize, map: &Arc<Vec<usize>>) -> Var {
    let ones = tape.constant(Matrix::ones(n_nodes, 1));
    let extended = tape.concat_rows(ms, ones);
    tape.gather_rows(extended, map.clone())
}

/// Everything one explainable-training step leaves on its tape, before
/// `backward` and the optimiser touch it.
struct ExplainStep {
    tape: Tape,
    out: ses_gnn::EncoderOutput,
    masks: crate::mask::MaskOutput,
    l_xent: Var,
    l_sub: Var,
    l_m_val: Option<f32>,
    /// Logits of the masked re-encoding pass (Eq. 8) — the forward-only
    /// serving outputs, present when the variant re-encodes under masks.
    masked_logits: Option<Var>,
    loss: Var,
}

/// Records one explainable-training step (Eqs. 2 and 7–9) on a fresh tape:
/// plain forward, mask-generator forward, subgraph loss, masked re-encoding
/// consistency loss, and the combined objective. This is the single source
/// of the phase-1 architecture — `fit`'s epoch loop runs it, and
/// [`explain_step_ir`] exports its IR for the `ses-verify` clean-run gate,
/// so the verifier always checks exactly what training records.
fn record_explain_step<E: Encoder + ?Sized>(
    encoder: &mut E,
    mask_gen: &mut MaskGenerator,
    graph: &Graph,
    ctx: &SesContext,
    config: &SesConfig,
    rng: &mut StdRng,
) -> ExplainStep {
    let mut tape = Tape::new();
    let x = tape.constant(graph.features().clone());

    // plain forward: Z, H  (Eq. 2)
    let out = {
        let mut fctx = ForwardCtx {
            tape: &mut tape,
            adj: &ctx.adj,
            x,
            edge_mask: None,
            train: true,
            rng,
        };
        encoder.forward(&mut fctx)
    };
    let l_xent = tape.cross_entropy_masked(out.logits, ctx.labels.clone(), ctx.train_idx.clone());

    // negative pair endpoints, re-sampled each epoch
    let (neg_a, neg_b) = sample_negative_endpoints(ctx, rng);
    let masks = mask_gen.forward(
        &mut tape,
        out.hidden,
        &ctx.khop,
        &ctx.khop_rows,
        &ctx.khop_cols,
        &neg_a,
        &neg_b,
    );

    // Eq. (7): subgraph loss against stacked labels [1 ; 0]
    let stacked = tape.concat_rows(masks.structure, masks.structure_neg);
    let nnz = ctx.khop.nnz();
    let mut targets = Matrix::ones(2 * nnz, 1);
    for i in nnz..2 * nnz {
        targets[(i, 0)] = 0.0;
    }
    let l_sub = tape.l1_to_constant(stacked, &targets);

    // Eq. (8): masked re-encoding consistency loss
    let mut l_m_val = None;
    let mut masked_logits = None;
    let mask_obj = if config.variant.use_masked_xent {
        let xm = tape.mul(masks.feature, x);
        let (view, map) = match config.masked_graph {
            crate::config::MaskedGraph::OneHop => (&ctx.adj, &ctx.onehop_lift),
            crate::config::MaskedGraph::KHop => (&ctx.khop_view, &ctx.khop_lift),
        };
        let lifted = lift_mask(&mut tape, masks.structure, graph.n_nodes(), map);
        let out_m = {
            let mut fctx = ForwardCtx {
                tape: &mut tape,
                adj: view,
                x: xm,
                edge_mask: Some(lifted),
                train: true,
                rng,
            };
            encoder.forward(&mut fctx)
        };
        let l_m =
            tape.cross_entropy_masked(out_m.logits, ctx.labels.clone(), ctx.train_idx.clone());
        masked_logits = Some(out_m.logits);
        l_m_val = Some(tape.value(l_m).scalar_value());
        let weighted_sub = tape.scale(l_sub, config.sub_loss_weight);
        let mut obj = tape.add(weighted_sub, l_m);
        if config.mask_size_weight > 0.0 {
            let s_size = tape.mean_all(masks.structure);
            let f_size = tape.mean_all(masks.feature);
            let sizes = tape.add(s_size, f_size);
            let pen = tape.scale(sizes, config.mask_size_weight);
            obj = tape.add(obj, pen);
        }
        obj
    } else {
        tape.scale(l_sub, config.sub_loss_weight)
    };

    // Eq. (9): α (L_sub + L^m_xent) + (1 − α) L_xent
    let weighted_mask = tape.scale(mask_obj, config.alpha);
    let weighted_xent = tape.scale(l_xent, 1.0 - config.alpha);
    let loss = tape.add(weighted_mask, weighted_xent);
    ExplainStep {
        tape,
        out,
        masks,
        l_xent,
        l_sub,
        l_m_val,
        masked_logits,
        loss,
    }
}

/// An exported explain-step tape annotated with the graph's observable
/// roots: the loss node (training) and the inference outputs (masks +
/// serving logits). This is the input contract of the `ses-ir` compiler —
/// DCE slices the tape to the ancestors of `outputs`, so what counts as
/// "observable" must be declared here, by the code that recorded the tape.
#[derive(Debug, Clone)]
pub struct ExplainStepIr {
    /// The exported tape.
    pub ir: ses_tensor::TapeIr,
    /// Node id of the combined Eq. 9 training loss.
    pub loss: usize,
    /// Node ids of the inference-time outputs: feature mask `M_f`,
    /// structure mask `M_s`, and the serving logits (masked re-encoding
    /// when the variant records one, the plain forward otherwise).
    pub outputs: Vec<usize>,
}

/// Extracts the IR + output annotations from one recorded step.
fn annotate_step(step: &ExplainStep) -> ExplainStepIr {
    let logits = step.masked_logits.unwrap_or(step.out.logits);
    ExplainStepIr {
        ir: step.tape.export_ir(),
        loss: step.loss.index(),
        outputs: vec![
            step.masks.feature.index(),
            step.masks.structure.index(),
            logits.index(),
        ],
    }
}

/// Records one explainable-training step of the **real** SES architecture —
/// GCN encoder plus mask generator over a small fixed graph, full Eq. 9
/// objective — through the production recording path
/// ([`record_explain_step`], the same function `fit`'s phase-1 loop calls)
/// and exports `(tape IR, loss node id)`.
///
/// This is the fixture behind `ses-verify`'s clean-run gate: a false
/// positive on this trace means the static verifier disagrees with what SES
/// training actually records, not with a hand-written imitation of it.
pub fn explain_step_ir() -> (ses_tensor::TapeIr, usize) {
    let step = explain_step_annotated();
    (step.ir, step.loss)
}

/// [`explain_step_ir`] plus inference-output annotations — the same
/// two-triangle fixture step, packaged for the `ses-ir` compiler.
pub fn explain_step_annotated() -> ExplainStepIr {
    let mut rng = StdRng::seed_from_u64(7);
    // Two feature-separable triangles joined by a bridge — 6 nodes, 2
    // classes, small enough that the 2-hop structure stays readable in
    // verifier diagnostics.
    let n = 6;
    let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
    let features = Matrix::from_vec(
        n,
        4,
        (0..n * 4).map(|i| ((i % 7) as f32) * 0.3 - 0.9).collect(),
    );
    let labels = vec![0, 0, 0, 1, 1, 1];
    let graph = Graph::new(n, &edges, features, labels);
    let splits = Splits {
        train: vec![0, 1, 3, 4],
        val: vec![2],
        test: vec![5],
    };
    let config = SesConfig {
        k: 2,
        mask_size_weight: 0.1,
        ..SesConfig::default()
    };
    let ctx = SesContext::build(&graph, &splits, &config, &mut rng);
    let mut encoder = ses_gnn::Gcn::new(graph.n_features(), 5, graph.n_classes(), &mut rng);
    let mut mask_gen = MaskGenerator::new(encoder.hidden_dim(), graph.n_features(), &mut rng);
    let step = record_explain_step(&mut encoder, &mut mask_gen, &graph, &ctx, &config, &mut rng);
    annotate_step(&step)
}

/// Records one explainable-training step with the **quickstart** setup —
/// `cora_like(Profile::Fast)`, GCN(features → 64 → classes), seed 0, default
/// config — and exports its annotated IR. This is the realistic-scale input
/// the `ses-ir` compile gate runs on in CI: same architecture, same
/// recording path, same dataset generator as `examples/quickstart.rs`.
pub fn quickstart_step_ir() -> ExplainStepIr {
    let mut rng = StdRng::seed_from_u64(0);
    let data = ses_data::realworld::cora_like(ses_data::Profile::Fast, &mut rng);
    let graph = &data.graph;
    let splits = Splits::classification(graph.n_nodes(), &mut rng);
    let config = SesConfig::default();
    let ctx = SesContext::build(graph, &splits, &config, &mut rng);
    let mut encoder = ses_gnn::Gcn::new(graph.n_features(), 64, graph.n_classes(), &mut rng);
    let mut mask_gen = MaskGenerator::new(encoder.hidden_dim(), graph.n_features(), &mut rng);
    let step = record_explain_step(&mut encoder, &mut mask_gen, graph, &ctx, &config, &mut rng);
    annotate_step(&step)
}

/// Fits SES on a graph: Algorithm 2 end to end.
pub fn fit<E: Encoder>(
    mut encoder: E,
    mut mask_gen: MaskGenerator,
    graph: &Graph,
    splits: &Splits,
    config: &SesConfig,
) -> TrainedSes<E> {
    assert_eq!(
        mask_gen.hidden_dim(),
        encoder.hidden_dim(),
        "mask generator width mismatch"
    );
    assert_eq!(
        mask_gen.feat_dim(),
        graph.n_features(),
        "mask generator feature dim mismatch"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let ctx = SesContext::build(graph, splits, config, &mut rng);

    // ----- Phase 1: explainable training -----
    let phase_span = ses_obs::span!("ses.phase.explain");
    let et_start = Stopwatch::start();
    let mut opt = Adam::new(config.lr).with_weight_decay(config.weight_decay);
    let mut et_loss_curve = Vec::with_capacity(config.epochs_explain);
    let mut et_val_curve = Vec::with_capacity(config.epochs_explain);
    let mut snapshots = Vec::new();

    // Same opt-in divergence sentinel as the EPL phase, but over the joint
    // encoder + mask-generator parameter set — a NaN in the mask branch must
    // roll *both* back or the pair drifts apart. Detections here are counted
    // separately (`trainer.recover.mask_phase`) so drills can tell which
    // phase a recovery fired in.
    let mut mask_manager = RecoveryManager::new(config.recovery.clone());

    let mut epoch = 0usize;
    while epoch < config.epochs_explain {
        let epoch_start = Stopwatch::start();
        let spans_before = ses_obs::spans::snapshot();
        let step = record_explain_step(&mut encoder, &mut mask_gen, graph, &ctx, config, &mut rng);
        let ExplainStep {
            mut tape,
            out,
            masks,
            l_xent,
            l_sub,
            l_m_val,
            masked_logits: _,
            loss,
        } = step;
        let loss_val = tape.value(loss).scalar_value();
        tape.backward(loss);

        let grads_finite = out
            .param_vars
            .iter()
            .chain(masks.param_vars.iter())
            .filter_map(|&v| tape.grad(v))
            .all(|g| g.as_slice().iter().all(|x| x.is_finite()));
        if let Verdict::Diverged(reason) = mask_manager.observe(loss_val, grads_finite) {
            ses_obs::metrics::TRAIN_RECOVER_MASK_PHASE.incr();
            let rolled_back = {
                let mut params = encoder.params_mut();
                params.extend(mask_gen.params_mut());
                mask_manager.try_rollback(&reason, &mut opt, &mut rng, &mut params)
            };
            match rolled_back {
                Ok(resume) => {
                    let keep = resume as usize + 1;
                    et_loss_curve.truncate(keep);
                    et_val_curve.truncate(keep);
                    snapshots.retain(|s: &MaskSnapshot| s.epoch < keep);
                    epoch = keep;
                    continue;
                }
                Err(err) => {
                    // Like the EPL phase, this loop reports through curves
                    // rather than a Result: on an unrecoverable divergence,
                    // restore the last consistent state (if any) and let the
                    // rest of the pipeline run from it.
                    if let Some(ckpt) = mask_manager.last_good().cloned() {
                        let mut params = encoder.params_mut();
                        params.extend(mask_gen.params_mut());
                        if ckpt.restore_into(&mut opt, &mut rng, &mut params).is_ok() {
                            let keep = ckpt.epoch as usize + 1;
                            et_loss_curve.truncate(keep);
                            et_val_curve.truncate(keep);
                            snapshots.retain(|s: &MaskSnapshot| s.epoch < keep);
                        }
                    }
                    ses_obs::info!(
                        "explain: stopping at epoch {epoch} after unrecoverable divergence ({reason}): {err}"
                    );
                    break;
                }
            }
        }

        apply_step(
            &mut opt,
            &tape,
            &mut encoder,
            Some(&mut mask_gen),
            &out.param_vars,
            &masks.param_vars,
        );

        if mask_manager.checkpoint_due(epoch as u64) {
            let ckpt = {
                let mut params = encoder.params_mut();
                params.extend(mask_gen.params_mut());
                TrainCheckpoint::capture(epoch as u64, &opt, &rng, &params)
            };
            if let Err(e) = mask_manager.record_checkpoint(ckpt, false) {
                ses_obs::info!("explain: stopping at epoch {epoch}: checkpoint write failed: {e}");
                break;
            }
        }

        et_loss_curve.push(loss_val);
        let (pred, _) = eval_forward(&encoder, graph, &ctx.adj, None, None, config.seed);
        let val_acc = accuracy(&pred, graph.labels(), eval_split(splits));
        et_val_curve.push(val_acc);

        let epoch_ns = epoch_start.elapsed_ns();
        ses_obs::metrics::TRAIN_EPOCH_NS.record(epoch_ns);
        ses_obs::slo::global().observe("epoch", epoch_ns);

        if ses_obs::sink::active() {
            let (feat_mean, feat_sparsity) = mask_stats(tape.value(masks.feature));
            let (struct_mean, struct_sparsity) = mask_stats(tape.value(masks.structure));
            let mut rec = ses_obs::Record::new("epoch")
                .str("phase", "explain")
                .int("epoch", epoch as i64)
                .num("loss", f64::from(loss_val))
                .num("loss_xent", f64::from(tape.value(l_xent).scalar_value()))
                .num("loss_sub", f64::from(tape.value(l_sub).scalar_value()));
            if let Some(lm) = l_m_val {
                rec = rec.num("loss_mask_xent", f64::from(lm));
            }
            rec.num("feat_mask_mean", feat_mean)
                .num("feat_mask_sparsity", feat_sparsity)
                .num("struct_mask_mean", struct_mean)
                .num("struct_mask_sparsity", struct_sparsity)
                .num("val_acc", val_acc)
                .num("epoch_ms", epoch_start.elapsed().as_secs_f64() * 1e3)
                .span_breakdown("kernels_ms", &ses_obs::spans::delta_since(&spans_before))
                .emit();
        }

        if config.record_masks_at.contains(&epoch) {
            let (fm, sw) = extract_masks(&encoder, &mask_gen, graph, &ctx, config.seed);
            snapshots.push(MaskSnapshot {
                epoch,
                feature_mask: fm,
                structure_weights: sw,
            });
        }
        epoch += 1;
    }

    // Final masks: the trained mask generator's output (constants from here on).
    let (feature_mask, structure_weights) =
        extract_masks(&encoder, &mask_gen, graph, &ctx, config.seed);
    let explain_time = et_start.elapsed();
    drop(phase_span);

    let explanations = Explanations {
        feature_mask: feature_mask.clone(),
        khop: ctx.khop.clone(),
        structure_weights: structure_weights.clone(),
    };

    let (pred_et, _) = masked_eval(
        &encoder,
        graph,
        &ctx,
        &explanations,
        &config.variant,
        config.seed,
    );
    let test_acc_after_et = accuracy(&pred_et, graph.labels(), test_split(splits));
    let (pred_plain, _) = eval_forward(&encoder, graph, &ctx.adj, None, None, config.seed);
    let test_acc_plain = accuracy(&pred_plain, graph.labels(), test_split(splits));

    // ----- Algorithm 1: positive-negative pairs -----
    let pair_start = Stopwatch::start();
    let pairs = construct_pairs(
        &ctx.khop,
        &structure_weights,
        &ctx.negatives,
        config.sample_ratio,
        &mut rng,
    );
    let pair_time = pair_start.elapsed();

    // ----- Phase 2: enhanced predictive learning -----
    let phase_span = ses_obs::span!("ses.phase.epl");
    let epl_start = Stopwatch::start();
    let epl_loss_curve = run_epl_phase(
        &mut encoder,
        graph,
        &ctx,
        &explanations,
        &pairs,
        config,
        &mut rng,
    );
    let epl_time = epl_start.elapsed();
    drop(phase_span);

    let (predictions, embeddings) = masked_eval(
        &encoder,
        graph,
        &ctx,
        &explanations,
        &config.variant,
        config.seed,
    );
    let test_acc = accuracy(&predictions, graph.labels(), test_split(splits));
    let val_acc = accuracy(&predictions, graph.labels(), eval_split(splits));

    if ses_obs::sink::active() {
        ses_obs::Record::new("run")
            .str("model", "ses")
            .num("test_acc", test_acc)
            .num("test_acc_after_et", test_acc_after_et)
            .num("val_acc", val_acc)
            .num("explain_ms", explain_time.as_secs_f64() * 1e3)
            .num("epl_ms", epl_time.as_secs_f64() * 1e3)
            .num("pair_ms", pair_time.as_secs_f64() * 1e3)
            .emit();
    }

    TrainedSes {
        encoder,
        mask_generator: mask_gen,
        explanations,
        predictions,
        embeddings,
        report: SesReport {
            test_acc,
            test_acc_after_et,
            test_acc_plain,
            val_acc,
            explain_time,
            epl_time,
            pair_time,
            et_loss_curve,
            et_val_curve,
            epl_loss_curve,
            mask_snapshots: snapshots,
        },
    }
}

/// Phase 2 given fixed masks and pairs. Public so that the `+{epl}` ablation
/// (post-hoc explainer masks + enhanced predictive learning, Table 10) can
/// drive it with masks from GNNExplainer/PGExplainer.
pub fn run_epl<E: Encoder + ?Sized>(
    encoder: &mut E,
    graph: &Graph,
    splits: &Splits,
    explanations: &Explanations,
    config: &SesConfig,
) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let ctx = SesContext::build(graph, splits, config, &mut rng);
    let pairs = construct_pairs(
        &ctx.khop,
        &explanations.structure_weights,
        &ctx.negatives,
        config.sample_ratio,
        &mut rng,
    );
    run_epl_phase(encoder, graph, &ctx, explanations, &pairs, config, &mut rng)
}

/// The enhanced-predictive-learning loop (Eq. 13), with the same opt-in
/// divergence sentinel as `ses_gnn::train_node_classifier`: under a
/// detect-enabled [`SesConfig::recovery`] policy, a NaN/Inf loss,
/// non-finite gradient, or loss spike rolls the phase back to its last
/// good checkpoint with LR backoff. Because this phase returns a loss
/// curve rather than a `Result` (it refines an already-trained model), an
/// *unrecoverable* divergence stops the phase gracefully at the last good
/// state instead of erroring.
fn run_epl_phase<E: Encoder + ?Sized>(
    encoder: &mut E,
    graph: &Graph,
    ctx: &SesContext,
    explanations: &Explanations,
    pairs: &PairSets,
    config: &SesConfig,
    rng: &mut StdRng,
) -> Vec<f32> {
    if !config.variant.use_triplet && !config.variant.use_xent_epl {
        return Vec::new();
    }
    let mut opt = Adam::new(config.lr).with_weight_decay(config.weight_decay);
    let mut curve = Vec::with_capacity(config.epochs_epl);
    let anchor = Arc::new(pairs.anchor_idx.clone());
    let pos = Arc::new(pairs.pos_idx.clone());
    let neg = Arc::new(pairs.neg_idx.clone());
    let masked_x = if config.variant.use_feature_mask {
        explanations.feature_mask.hadamard(graph.features())
    } else {
        graph.features().clone()
    };
    let onehop_mask_values = if config.variant.use_structure_mask {
        Some(lift_weights_const(
            &ctx.khop,
            &explanations.structure_weights,
            &ctx.adj,
            &ctx.onehop_lift,
        ))
    } else {
        None
    };

    let mut manager = RecoveryManager::new(config.recovery.clone());
    let fault_spec = config.fault.or_else(fault::from_env);
    let mut fault_fired = false;

    let mut epoch = 0usize;
    while epoch < config.epochs_epl {
        let epoch_start = Stopwatch::start();
        let spans_before = ses_obs::spans::snapshot();
        let fires = |fired: bool, kind: FaultKind| -> bool {
            !fired && fault_spec.is_some_and(|s| s.kind == kind && s.fires_at(epoch as u64))
        };
        if fires(fault_fired, FaultKind::WorkerPanic) {
            fault_fired = true;
            ses_tensor::par::arm_worker_panic(0);
        }
        let mut tape = Tape::new();
        let x = tape.constant(masked_x.clone());
        let edge_mask = onehop_mask_values
            .as_ref()
            .map(|v| tape.constant(Matrix::col_vec(v)));
        let out = {
            let mut fctx = ForwardCtx {
                tape: &mut tape,
                adj: &ctx.adj,
                x,
                edge_mask,
                train: true,
                rng,
            };
            encoder.forward(&mut fctx)
        };

        // Eq. (13): β L_triplet + (1 − β) L_xent
        let mut loss = None;
        let mut l_triplet_val = None;
        let mut l_xent_val = None;
        if config.variant.use_triplet && !pairs.is_empty() {
            let a = tape.gather_rows(out.hidden, anchor.clone());
            let p = tape.gather_rows(out.hidden, pos.clone());
            let n = tape.gather_rows(out.hidden, neg.clone());
            let d_pos = tape.row_l2_distance(a, p);
            let d_neg = tape.row_l2_distance(a, n);
            let gap = tape.sub(d_pos, d_neg);
            let gap = tape.add_scalar(gap, config.margin);
            let hinge = tape.relu(gap);
            let l_triplet = tape.mean_all(hinge);
            l_triplet_val = Some(tape.value(l_triplet).scalar_value());
            loss = Some(tape.scale(l_triplet, config.beta));
        }
        if config.variant.use_xent_epl {
            let l_xent =
                tape.cross_entropy_masked(out.logits, ctx.labels.clone(), ctx.train_idx.clone());
            l_xent_val = Some(tape.value(l_xent).scalar_value());
            let weighted = tape.scale(l_xent, 1.0 - config.beta);
            loss = Some(match loss {
                Some(l) => tape.add(l, weighted),
                None => weighted,
            });
        }
        // No contributing objective (both EPL terms disabled, or triplet-only
        // with an empty pair set): nothing to optimise, so stop early rather
        // than spin through no-op epochs.
        let Some(loss) = loss else { break };
        let loss_val = tape.value(loss).scalar_value();
        tape.backward(loss);
        // A worker-panic fault armed above is consumed during forward/backward
        // kernels; disarm so an unfired countdown (serial run) cannot leak.
        ses_tensor::par::disarm_worker_panic();

        let mut enc_grads: Vec<Option<Matrix>> = out
            .param_vars
            .iter()
            .map(|&v| tape.grad(v).cloned())
            .collect();
        if fires(fault_fired, FaultKind::NanGrad) {
            fault_fired = true;
            fault::corrupt_one_grad(&mut enc_grads, fault_spec.map_or(0, |s| s.seed));
        }
        let grads_finite = enc_grads
            .iter()
            .flatten()
            .all(|g| g.as_slice().iter().all(|x| x.is_finite()));

        if let Verdict::Diverged(reason) = manager.observe(loss_val, grads_finite) {
            let rolled_back = {
                let mut params = encoder.params_mut();
                manager.try_rollback(&reason, &mut opt, rng, &mut params)
            };
            match rolled_back {
                Ok(resume) => {
                    curve.truncate(resume as usize + 1);
                    epoch = resume as usize + 1;
                    continue;
                }
                Err(err) => {
                    // This phase refines an already-trained model and returns
                    // a curve, not a Result: on an unrecoverable divergence,
                    // restore the last good state (if any) and stop early.
                    if let Some(ckpt) = manager.last_good().cloned() {
                        let mut params = encoder.params_mut();
                        if ckpt.restore_into(&mut opt, rng, &mut params).is_ok() {
                            curve.truncate(ckpt.epoch as usize + 1);
                        }
                    }
                    ses_obs::info!(
                        "epl: stopping at epoch {epoch} after unrecoverable divergence ({reason}): {err}"
                    );
                    break;
                }
            }
        }
        curve.push(loss_val);

        {
            let mut params = encoder.params_mut();
            let mut all: Vec<(&mut ses_tensor::Param, &Matrix)> = Vec::new();
            for (p, g) in params.iter_mut().zip(enc_grads.iter()) {
                if let Some(g) = g {
                    all.push((&mut **p, g));
                }
            }
            opt.step(&mut all);
        }

        if manager.checkpoint_due(epoch as u64) {
            let ckpt = {
                let params = encoder.params_mut();
                TrainCheckpoint::capture(epoch as u64, &opt, rng, &params)
            };
            let inject_io = fires(fault_fired, FaultKind::CkptIo);
            if inject_io {
                fault_fired = true;
            }
            if let Err(e) = manager.record_checkpoint(ckpt, inject_io) {
                // Strict checkpointing demands durability this phase cannot
                // provide; stop at the last consistent state.
                ses_obs::info!("epl: stopping at epoch {epoch}: checkpoint write failed: {e}");
                break;
            }
        }

        let epoch_ns = epoch_start.elapsed_ns();
        ses_obs::metrics::TRAIN_EPOCH_NS.record(epoch_ns);
        ses_obs::slo::global().observe("epoch", epoch_ns);

        if ses_obs::sink::active() {
            let mut rec = ses_obs::Record::new("epoch")
                .str("phase", "epl")
                .int("epoch", epoch as i64)
                .num("loss", f64::from(loss_val));
            if let Some(lt) = l_triplet_val {
                rec = rec.num("loss_triplet", f64::from(lt));
            }
            if let Some(lx) = l_xent_val {
                rec = rec.num("loss_xent", f64::from(lx));
            }
            rec.num("epoch_ms", epoch_start.elapsed().as_secs_f64() * 1e3)
                .span_breakdown("kernels_ms", &ses_obs::spans::delta_since(&spans_before))
                .emit();
        }
        epoch += 1;
    }
    curve
}

/// Reads gradients from the tape and applies one optimiser step over the
/// encoder (and optionally mask generator) parameters. Parameters whose
/// gradient is absent (e.g. unused in an ablation) are skipped.
fn apply_step<E: Encoder + ?Sized>(
    opt: &mut Adam,
    tape: &Tape,
    encoder: &mut E,
    mask_gen: Option<&mut MaskGenerator>,
    enc_vars: &[Var],
    mask_vars: &[Var],
) {
    let zero_shapes: Vec<Matrix> = Vec::new();
    let _ = zero_shapes;
    let enc_grads: Vec<Option<Matrix>> = enc_vars.iter().map(|&v| tape.grad(v).cloned()).collect();
    let mask_grads: Vec<Option<Matrix>> =
        mask_vars.iter().map(|&v| tape.grad(v).cloned()).collect();

    let mut params = encoder.params_mut();
    let mut all: Vec<(&mut ses_tensor::Param, &Matrix)> = Vec::new();
    for (p, g) in params.iter_mut().zip(enc_grads.iter()) {
        if let Some(g) = g {
            all.push((&mut **p, g));
        }
    }
    let mut mg_params;
    if let Some(mg) = mask_gen {
        mg_params = mg.params_mut();
        for (p, g) in mg_params.iter_mut().zip(mask_grads.iter()) {
            if let Some(g) = g {
                all.push((&mut **p, g));
            }
        }
    }
    opt.step(&mut all);
}

/// Samples one negative endpoint per k-hop edge: the anchor stays the edge's
/// source, the other end is drawn from `P_n(anchor)`.
fn sample_negative_endpoints(
    ctx: &SesContext,
    rng: &mut StdRng,
) -> (Arc<Vec<usize>>, Arc<Vec<usize>>) {
    let mut a = Vec::with_capacity(ctx.khop.nnz());
    let mut b = Vec::with_capacity(ctx.khop.nnz());
    for v in 0..ctx.khop.n_rows() {
        let drawn = ctx.negatives.draw(v, ctx.khop.row_nnz(v), rng);
        for u in drawn {
            a.push(v);
            b.push(u);
        }
    }
    // Nodes whose negative pool is empty contribute no rows; pad by
    // repeating the last pair so lengths always match nnz.
    while a.len() < ctx.khop.nnz() {
        let last_a = a.last().copied().unwrap_or(0);
        let last_b = b.last().copied().unwrap_or(0);
        a.push(last_a);
        b.push(last_b);
    }
    (Arc::new(a), Arc::new(b))
}

/// Runs the trained encoder + mask generator once in eval mode and extracts
/// the masks as plain matrices.
fn extract_masks<E: Encoder>(
    encoder: &E,
    mask_gen: &MaskGenerator,
    graph: &Graph,
    ctx: &SesContext,
    seed: u64,
) -> (Matrix, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tape = Tape::new();
    let x = tape.constant(graph.features().clone());
    let out = {
        let mut fctx = ForwardCtx {
            tape: &mut tape,
            adj: &ctx.adj,
            x,
            edge_mask: None,
            train: false,
            rng: &mut rng,
        };
        encoder.forward(&mut fctx)
    };
    // negative endpoints are irrelevant for extraction; reuse structure rows
    let masks = mask_gen.forward(
        &mut tape,
        out.hidden,
        &ctx.khop,
        &ctx.khop_rows,
        &ctx.khop_cols,
        &ctx.khop_rows,
        &ctx.khop_cols,
    );
    let fm = tape.value(masks.feature).clone();
    let sw = tape.value(masks.structure).as_slice().to_vec();
    (fm, sw)
}

/// Constant lift of mask weights onto a view (no gradient needed).
fn lift_weights_const(
    khop: &CsrStructure,
    weights: &[f32],
    _view: &AdjView,
    map: &Arc<Vec<usize>>,
) -> Vec<f32> {
    let nnz = khop.nnz();
    map.iter()
        .map(|&m| if m >= nnz { 1.0 } else { weights[m] })
        .collect()
}

/// Plain (optionally masked) eval forward: returns `(argmax predictions,
/// hidden embeddings)`.
fn eval_forward<E: Encoder>(
    encoder: &E,
    graph: &Graph,
    adj: &AdjView,
    features_override: Option<&Matrix>,
    edge_values: Option<&[f32]>,
    seed: u64,
) -> (Vec<usize>, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tape = Tape::new();
    let x = tape.constant(features_override.unwrap_or(graph.features()).clone());
    let edge_mask = edge_values.map(|v| tape.constant(Matrix::col_vec(v)));
    let out = {
        let mut fctx = ForwardCtx {
            tape: &mut tape,
            adj,
            x,
            edge_mask,
            train: false,
            rng: &mut rng,
        };
        encoder.forward(&mut fctx)
    };
    (
        tape.value(out.logits).argmax_rows(),
        tape.value(out.hidden).clone(),
    )
}

/// Eval forward with the SES masks applied per the variant flags (Eq. 10).
fn masked_eval<E: Encoder>(
    encoder: &E,
    graph: &Graph,
    ctx: &SesContext,
    explanations: &Explanations,
    variant: &crate::config::SesVariant,
    seed: u64,
) -> (Vec<usize>, Matrix) {
    let fx = if variant.use_feature_mask {
        Some(explanations.feature_mask.hadamard(graph.features()))
    } else {
        None
    };
    let ev = if variant.use_structure_mask {
        Some(lift_weights_const(
            &ctx.khop,
            &explanations.structure_weights,
            &ctx.adj,
            &ctx.onehop_lift,
        ))
    } else {
        None
    };
    eval_forward(encoder, graph, &ctx.adj, fx.as_ref(), ev.as_deref(), seed)
}

fn eval_split(splits: &Splits) -> &[usize] {
    if splits.val.is_empty() {
        &splits.train
    } else {
        &splits.val
    }
}

fn test_split(splits: &Splits) -> &[usize] {
    if splits.test.is_empty() {
        &splits.train
    } else {
        &splits.test
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SesVariant;
    use ses_data::{realworld, Profile};
    use ses_gnn::Gcn;

    fn quick_config() -> SesConfig {
        SesConfig {
            epochs_explain: 60,
            epochs_epl: 8,
            ..Default::default()
        }
    }

    #[test]
    fn ses_gcn_learns_polblogs_like() {
        let mut rng = StdRng::seed_from_u64(21);
        let d = realworld::polblogs_like(Profile::Fast, &mut rng);
        let g = &d.graph;
        let splits = Splits::classification(g.n_nodes(), &mut rng);
        let enc = Gcn::new(g.n_features(), 16, g.n_classes(), &mut rng);
        let mg = MaskGenerator::new(16, g.n_features(), &mut rng);
        let trained = fit(enc, mg, g, &splits, &quick_config());
        assert!(
            trained.report.test_acc > 0.85,
            "SES(GCN) should solve the 2-block SBM, got {}",
            trained.report.test_acc
        );
        // explanations cover every node
        assert_eq!(trained.explanations.feature_mask.rows(), g.n_nodes());
        assert_eq!(
            trained.explanations.structure_weights.len(),
            trained.explanations.khop.nnz()
        );
        assert_eq!(trained.report.et_loss_curve.len(), 60);
    }

    #[test]
    fn structure_mask_separates_pos_from_neg_pairs() {
        // After training, real k-hop edges should score higher on average
        // than the subgraph loss's implicit negatives (non-neighbours).
        let mut rng = StdRng::seed_from_u64(22);
        let d = realworld::polblogs_like(Profile::Fast, &mut rng);
        let g = &d.graph;
        let splits = Splits::classification(g.n_nodes(), &mut rng);
        let enc = Gcn::new(g.n_features(), 16, g.n_classes(), &mut rng);
        let mg = MaskGenerator::new(16, g.n_features(), &mut rng);
        let trained = fit(enc, mg, g, &splits, &quick_config());
        let mean_pos: f32 = trained.explanations.structure_weights.iter().sum::<f32>()
            / trained.explanations.structure_weights.len() as f32;
        assert!(
            mean_pos > 0.5,
            "k-hop edges should be scored as positives (mean={mean_pos})"
        );
    }

    #[test]
    fn ablation_variants_run() {
        let mut rng = StdRng::seed_from_u64(23);
        let d = realworld::polblogs_like(Profile::Fast, &mut rng);
        let g = &d.graph;
        let splits = Splits::classification(g.n_nodes(), &mut rng);
        let mut cfg = quick_config();
        cfg.epochs_epl = 3;
        for variant in [
            SesVariant {
                use_feature_mask: false,
                ..Default::default()
            },
            SesVariant {
                use_structure_mask: false,
                ..Default::default()
            },
            SesVariant {
                use_xent_epl: false,
                ..Default::default()
            },
            SesVariant {
                use_triplet: false,
                ..Default::default()
            },
            SesVariant {
                use_masked_xent: false,
                ..Default::default()
            },
        ] {
            let mut c = cfg.clone();
            c.variant = variant.clone();
            let enc = Gcn::new(g.n_features(), 8, g.n_classes(), &mut rng);
            let mg = MaskGenerator::new(8, g.n_features(), &mut rng);
            let trained = fit(enc, mg, g, &splits, &c);
            // Without L^m_xent the encoder is never trained under masked
            // inputs, so the masked eval is expected to degrade (the paper's
            // Table 5 finding); judge that variant by its plain forward.
            let acc = if variant.use_masked_xent {
                trained.report.test_acc
            } else {
                trained.report.test_acc_plain
            };
            assert!(acc > 0.5, "variant {} collapsed: {acc}", variant.label());
        }
    }

    #[test]
    fn capped_khop_bounds_mask_size_and_still_learns() {
        let mut rng = StdRng::seed_from_u64(25);
        let d = realworld::polblogs_like(Profile::Fast, &mut rng);
        let g = &d.graph;
        let splits = Splits::classification(g.n_nodes(), &mut rng);
        let enc = Gcn::new(g.n_features(), 16, g.n_classes(), &mut rng);
        let mg = MaskGenerator::new(16, g.n_features(), &mut rng);
        let cfg = SesConfig {
            epochs_explain: 60,
            epochs_epl: 5,
            max_khop_neighbors: Some(20),
            ..Default::default()
        };
        let trained = fit(enc, mg, g, &splits, &cfg);
        assert!(
            trained.explanations.khop.nnz() <= g.n_nodes() * 20,
            "cap must bound the structure-mask size"
        );
        assert!(
            trained.report.test_acc > 0.8,
            "capped SES should still learn: {}",
            trained.report.test_acc
        );
    }

    #[test]
    fn mask_snapshots_recorded() {
        let mut rng = StdRng::seed_from_u64(24);
        let d = realworld::polblogs_like(Profile::Fast, &mut rng);
        let g = &d.graph;
        let splits = Splits::classification(g.n_nodes(), &mut rng);
        let mut cfg = quick_config();
        cfg.epochs_explain = 6;
        cfg.epochs_epl = 2;
        cfg.record_masks_at = vec![0, 3, 5];
        let enc = Gcn::new(g.n_features(), 8, g.n_classes(), &mut rng);
        let mg = MaskGenerator::new(8, g.n_features(), &mut rng);
        let trained = fit(enc, mg, g, &splits, &cfg);
        assert_eq!(trained.report.mask_snapshots.len(), 3);
        assert_eq!(trained.report.mask_snapshots[1].epoch, 3);
        // masks evolve over training
        let first = &trained.report.mask_snapshots[0].feature_mask;
        let last = &trained.report.mask_snapshots[2].feature_mask;
        assert!(
            first.max_abs_diff(last) > 1e-5,
            "mask should change during training"
        );
    }

    #[test]
    fn epl_nan_grad_fault_recovers_and_finishes_the_phase() {
        ses_obs::set_enabled_override(Some(true));
        let rollbacks_before = ses_obs::metrics::TRAIN_RECOVER_ROLLBACKS.get();
        let detected_before = ses_obs::metrics::TRAIN_RECOVER_DETECTED.get();
        let mut rng = StdRng::seed_from_u64(26);
        let d = realworld::polblogs_like(Profile::Fast, &mut rng);
        let g = &d.graph;
        let splits = Splits::classification(g.n_nodes(), &mut rng);
        let enc = Gcn::new(g.n_features(), 8, g.n_classes(), &mut rng);
        let mg = MaskGenerator::new(8, g.n_features(), &mut rng);
        let cfg = SesConfig {
            epochs_explain: 10,
            epochs_epl: 6,
            recovery: ses_resilience::RecoveryPolicy::standard(),
            fault: Some(ses_resilience::FaultSpec {
                kind: FaultKind::NanGrad,
                epoch: 3,
                seed: 11,
            }),
            ..Default::default()
        };
        let trained = fit(enc, mg, g, &splits, &cfg);
        ses_obs::set_enabled_override(None);
        assert_eq!(
            trained.report.epl_loss_curve.len(),
            6,
            "EPL must complete its full schedule despite the injected fault"
        );
        assert!(trained.report.epl_loss_curve.iter().all(|l| l.is_finite()));
        assert!(ses_obs::metrics::TRAIN_RECOVER_DETECTED.get() > detected_before);
        assert!(ses_obs::metrics::TRAIN_RECOVER_ROLLBACKS.get() > rollbacks_before);
    }

    #[test]
    fn mask_phase_divergence_is_detected_and_fit_survives() {
        ses_obs::set_enabled_override(Some(true));
        let mask_before = ses_obs::metrics::TRAIN_RECOVER_MASK_PHASE.get();
        let mut rng = StdRng::seed_from_u64(28);
        let d = realworld::polblogs_like(Profile::Fast, &mut rng);
        let g = &d.graph;
        let splits = Splits::classification(g.n_nodes(), &mut rng);
        let enc = Gcn::new(g.n_features(), 8, g.n_classes(), &mut rng);
        let mg = MaskGenerator::new(8, g.n_features(), &mut rng);
        // An absurd learning rate makes Adam blow the joint encoder +
        // mask-generator parameters up after the first step; the stable
        // log-sum-exp keeps the exploded loss *finite*, so what must fire
        // is the sentinel's spike detector — with a one-epoch window the
        // epoch-1 loss is judged against the healthy epoch-0 median. No
        // fault injection involved: this is natural divergence that only
        // the mask-phase sentinel can see.
        let cfg = SesConfig {
            epochs_explain: 8,
            epochs_epl: 0,
            lr: 1e12,
            recovery: ses_resilience::RecoveryPolicy {
                spike_window: 1,
                ..ses_resilience::RecoveryPolicy::standard()
            },
            ..Default::default()
        };
        let trained = fit(enc, mg, g, &splits, &cfg);
        ses_obs::set_enabled_override(None);
        assert!(
            ses_obs::metrics::TRAIN_RECOVER_MASK_PHASE.get() > mask_before,
            "the explain-phase sentinel must have fired"
        );
        assert!(
            trained.report.et_loss_curve.iter().all(|l| l.is_finite()),
            "diverged epochs must not leak into the reported curve"
        );
    }

    #[test]
    fn epl_stops_gracefully_when_retry_budget_is_zero() {
        // detect on, zero retries: the sentinel sees the NaN but has no
        // budget to roll back, so the phase stops at the last good state
        // instead of stepping the encoder onto garbage. The fault fires at
        // epoch 3, so exactly epochs 0..=2 survive in the curve.
        let mut rng = StdRng::seed_from_u64(27);
        let d = realworld::polblogs_like(Profile::Fast, &mut rng);
        let g = &d.graph;
        let splits = Splits::classification(g.n_nodes(), &mut rng);
        let enc = Gcn::new(g.n_features(), 8, g.n_classes(), &mut rng);
        let mg = MaskGenerator::new(8, g.n_features(), &mut rng);
        let cfg = SesConfig {
            epochs_explain: 10,
            epochs_epl: 6,
            recovery: ses_resilience::RecoveryPolicy {
                max_retries: 0,
                ..ses_resilience::RecoveryPolicy::standard()
            },
            fault: Some(ses_resilience::FaultSpec {
                kind: FaultKind::NanGrad,
                epoch: 3,
                seed: 11,
            }),
            ..Default::default()
        };
        let trained = fit(enc, mg, g, &splits, &cfg);
        assert_eq!(
            trained.report.epl_loss_curve.len(),
            3,
            "the phase must stop at the checkpointed state before the fault"
        );
        assert!(trained.report.epl_loss_curve.iter().all(|l| l.is_finite()));
        // The encoder is restored to the last good checkpoint, so the model
        // must still classify — the aborted phase degrades, not destroys.
        assert!(trained.report.test_acc > 0.5);
    }
}
