#!/usr/bin/env bash
# Full local CI gate: formatting, lints (compiler + workspace lint pass),
# and the tier-1 test suite. See docs/CORRECTNESS.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo run -p ses-lint"
cargo run -q -p ses-lint

echo "== cargo test -q"
cargo test -q

echo "ci: all gates green"
