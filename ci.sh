#!/usr/bin/env bash
# Full local CI gate: formatting, lints (compiler + workspace lint pass),
# and the tier-1 test suite. See docs/CORRECTNESS.md.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== cargo run -p ses-lint"
cargo run -q -p ses-lint

echo "== cargo run -p ses-verify (static tape-IR + partition gate)"
cargo run -q -p ses-verify
# The verifier must also still *reject* known-bad inputs: each seeded
# defect run is required to exit non-zero.
for defect in shape-mismatch backward-gap broken-partitioner bad-rewrite; do
  if cargo run -q -p ses-verify -- --seed-defect "$defect" >/dev/null 2>&1; then
    echo "ci: ses-verify failed to reject seeded defect '$defect'" >&2
    exit 1
  fi
done

echo "== cargo test -q"
cargo test -q

echo "== race-check (model-checked interleavings, <60s budget)"
# The clean suite must explore >=10k schedules and exit 0; each seeded
# concurrency defect (a real bug compiled into the checked code) must be
# caught, i.e. exit non-zero with a minimal failing schedule. Dev profile:
# the checker is branchy interpreter-style code, release buys nothing here.
cargo run -q -p ses-race-suite --features race --bin ses-race
for defect in lost-increment torn-snapshot double-lease dropped-task; do
  if cargo run -q -p ses-race-suite --features race --bin ses-race -- \
      --seed-defect "$defect" >/dev/null 2>&1; then
    echo "ci: ses-race failed to catch seeded concurrency defect '$defect'" >&2
    exit 1
  fi
done

echo "== ses-ir compile gate (verified inference plans + telemetry)"
# Compiles both explain-step tapes into inference plans. The binary itself
# enforces the >=20% node-count reduction floor and a strict peak-buffer
# shrink, and every rewrite pass is translation-validated on the way.
SES_OBS=1 \
SES_OBS_FILE="$PWD/target/ir_ci.jsonl" \
cargo run -q -p ses-ir --bin ses-ir
cargo run -q -p ses-obs --bin obs-validate -- "$PWD/target/ir_ci.jsonl" --require bench_row
# EXPERIMENTS.md's ir_compile table is regenerated from exactly this run;
# a drifted compiler must come with a refreshed table in the same commit.
cargo run -q -p ses-obs --bin ses-obs -- regen "$PWD/target/ir_ci.jsonl" EXPERIMENTS.md --check

echo "== telemetry pipeline (traced quickstarts, exporters, noise-aware diff)"
# Two identical instrumented runs: JSONL + Prometheus + Chrome-trace outputs
# must all validate, and `ses-obs diff` must call them unchanged.
for run in a b; do
  SES_OBS=1 \
  SES_OBS_FILE="$PWD/target/obs_ci_$run.jsonl" \
  SES_OBS_PROM_FILE="$PWD/target/obs_ci_$run.prom" \
  SES_OBS_CHROME="$PWD/target/obs_ci_$run.chrome.json" \
  SES_QUICKSTART_EPOCHS=3 \
  cargo run -q --example quickstart >/dev/null
  cargo run -q -p ses-obs --bin obs-validate -- "$PWD/target/obs_ci_$run.jsonl"
  cargo run -q -p ses-obs --bin obs-validate -- --prom "$PWD/target/obs_ci_$run.prom"
  cargo run -q -p ses-obs --bin obs-validate -- --chrome "$PWD/target/obs_ci_$run.chrome.json"
done
cargo run -q -p ses-obs --bin ses-obs -- trend "$PWD/target/obs_ci_a.jsonl" >/dev/null
# Identical runs: no regression verdict allowed (generous thresholds keep
# shared-runner noise out; a metric must double AND move 50ms to regress).
cargo run -q -p ses-obs --bin ses-obs -- diff \
  "$PWD/target/obs_ci_a.jsonl" "$PWD/target/obs_ci_b.jsonl" \
  --threshold 1.0 --abs-floor-ms 50
# …and the regression path must actually fire: a seeded 4x slowdown on run B
# has to produce a regression verdict (exit 1).
if cargo run -q -p ses-obs --bin ses-obs -- diff \
    "$PWD/target/obs_ci_a.jsonl" "$PWD/target/obs_ci_b.jsonl" \
    --threshold 1.0 --abs-floor-ms 50 --drill-slowdown 4 >/dev/null; then
  echo "ci: ses-obs diff failed to flag a seeded 4x slowdown" >&2
  exit 1
fi

echo "== fault-injection drills (seeded faults recover; fatal with recovery off)"
# Each fault mode must be absorbed by the recovery layer under the standard
# policy (exit 0, recovery counters non-zero — the drill binary checks them),
# and the *same* fault must be fatal when recovery is disabled, proving the
# recovery path is what saved the run.
for fault in "nan-grad@3,seed=7" "worker-panic@3,seed=7" "ckpt-io@3,seed=7"; do
  echo "   -- $fault (recovery on: must recover)"
  SES_FAULT="$fault" cargo run -q -p ses-gnn --bin fault-drill
  echo "   -- $fault (recovery off: must be fatal)"
  if SES_FAULT="$fault" SES_RECOVERY=off cargo run -q -p ses-gnn --bin fault-drill \
      >/dev/null 2>&1; then
    echo "ci: fault '$fault' was survived with recovery disabled" >&2
    exit 1
  fi
done

echo "== serve drills (serve-path faults degrade gracefully; fatal with recovery off)"
# Each serve-path fault must be absorbed by the runtime's nets under the
# standard policy — the process stays up, every request completes (possibly
# degraded), the matching serve.* counter moves, and the overload burst
# sheds — and the *same* fault must be fatal with recovery disabled. The
# emitted serve_counters record is validated so the telemetry contract
# (serve.shed / serve.degraded.* / serve.deadline.breach / serve.cache.*)
# holds end to end.
for fault in "slow-stage@encode" "panic@request-3" "cache-poison"; do
  echo "   -- $fault (recovery on: must degrade and recover)"
  SES_FAULT="$fault" \
  SES_OBS=1 \
  SES_OBS_FILE="$PWD/target/serve_drill.jsonl" \
  cargo run -q -p ses-serve --bin serve-drill
  cargo run -q -p ses-obs --bin obs-validate -- "$PWD/target/serve_drill.jsonl" \
    --require serve_counters
  echo "   -- $fault (recovery off: must be fatal)"
  if SES_FAULT="$fault" SES_RECOVERY=off cargo run -q -p ses-serve --bin serve-drill \
      >/dev/null 2>&1; then
    echo "ci: serve fault '$fault' was survived with recovery disabled" >&2
    exit 1
  fi
done

echo "== serve bench (throughput + p99 explain-latency gate)"
# Release build: the gate is on tail latency, debug timings are meaningless.
# The bench also asserts the deterministic overload burst sheds exactly the
# overflow, and its bench_row record must validate.
SES_BENCH_QUICK=1 \
SES_BENCH_OUT="$PWD/BENCH_serve.json" \
SES_OBS=1 \
SES_OBS_FILE="$PWD/target/serve_bench.jsonl" \
cargo run -q --release -p ses-serve --bin serve-bench
cargo run -q -p ses-obs --bin obs-validate -- "$PWD/target/serve_bench.jsonl" \
  --require bench_row

echo "== bench smoke (quick mode, regression gate)"
# Absolute paths: cargo runs the bench binary from the package root.
SES_BENCH_QUICK=1 \
SES_BENCH_OUT="$PWD/BENCH_kernels.json" \
SES_BENCH_BASELINE="$PWD/crates/tensor/benches/BENCH_baseline.json" \
cargo bench -q -p ses-tensor --bench kernels

echo "ci: all gates green"
