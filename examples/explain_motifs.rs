//! Motif explanation on a synthetic benchmark: train SES on BAShapes and
//! check how well its structure mask recovers the ground-truth "house"
//! motifs, comparing against the GNNExplainer baseline.
//!
//! ```sh
//! cargo run --release --example explain_motifs
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses::core::{fit, MaskGenerator, SesConfig};
use ses::data::{synthetic, Splits};
use ses::explain::{explanation_auc, Backbone, GnnExplainer, GnnExplainerConfig, SesExplainer};
use ses::gnn::{Gcn, TrainConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = synthetic::ba_shapes(&mut rng);
    let graph = &data.dataset.graph;
    println!(
        "BAShapes: {} nodes, {} motifs, classes = {{base, top, bottom, roof}}",
        graph.n_nodes(),
        data.ground_truth.n_motifs()
    );

    let splits = Splits::explanation(graph.n_nodes(), &mut rng);

    // SES with a 3-layer GCN (structural roles need a 3-hop receptive field)
    // and the explanation-tuned config (mask-size penalty on).
    let encoder =
        Gcn::three_layer(graph.n_features(), 32, graph.n_classes(), &mut rng).with_dropout(0.0);
    let mask_gen = MaskGenerator::new(32, graph.n_features(), &mut rng);
    let config = SesConfig {
        k: 2,
        lr: 0.01,
        epochs_explain: 400,
        epochs_epl: 0,
        sub_loss_weight: 0.3,
        mask_size_weight: 0.5,
        label_filtered_negatives: false,
        ..Default::default()
    };
    let trained = fit(encoder, mask_gen, graph, &splits, &config);
    println!(
        "SES plain test accuracy: {:.2}%",
        100.0 * trained.report.test_acc_plain
    );

    let eval_nodes: Vec<usize> = data
        .ground_truth
        .motif_nodes()
        .into_iter()
        .step_by(7)
        .take(40)
        .collect();
    let mut ses_explainer = SesExplainer::new(trained.explanations.clone(), graph.clone());
    let ses_auc = explanation_auc(&mut ses_explainer, &data, &eval_nodes, 2);
    println!("SES explanation AUC: {:.3}", ses_auc);

    // Baseline: GNNExplainer over a separately trained backbone.
    let cfg = TrainConfig {
        epochs: 500,
        patience: 0,
        lr: 0.01,
        ..Default::default()
    };
    let enc =
        Gcn::three_layer(graph.n_features(), 32, graph.n_classes(), &mut rng).with_dropout(0.0);
    let bb = Backbone::train(Box::new(enc), graph, &splits, &cfg);
    let mut gx = GnnExplainer::new(&bb, GnnExplainerConfig::default());
    let gx_auc = explanation_auc(&mut gx, &data, &eval_nodes, 2);
    println!(
        "GNNExplainer AUC:    {:.3} (backbone acc {:.2}%)",
        gx_auc,
        100.0 * bb.test_acc
    );

    // Show one motif node's neighbour ranking against ground truth.
    let node = eval_nodes[0];
    let motif = data
        .ground_truth
        .motif_of(node)
        .expect("eval node is in a motif");
    println!("\nnode {node} belongs to motif {motif}; SES neighbour ranking:");
    for (u, w) in trained
        .explanations
        .ranked_neighbors(node)
        .into_iter()
        .take(8)
    {
        let in_motif = data.ground_truth.motif_of(u) == Some(motif);
        println!("  neighbour {u:4}  weight {w:.3}  in same motif: {in_motif}");
    }
}
