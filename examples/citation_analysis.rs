//! End-to-end citation-network analysis: compares a plain GCN against SES on
//! the CiteSeer stand-in across accuracy, Fidelity+ of feature explanations,
//! and embedding cluster quality — the full evaluation loop a practitioner
//! would run before adopting a self-explainable model.
//!
//! ```sh
//! cargo run --release --example citation_analysis
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses::core::{fit, MaskGenerator, SesConfig};
use ses::data::{realworld, Profile, Splits};
use ses::gnn::{fidelity_plus, train_node_classifier, AdjView, Encoder, Gcn, TrainConfig};
use ses::metrics::{calinski_harabasz_score, silhouette_score};

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let data = realworld::citeseer_like(Profile::Fast, &mut rng);
    let graph = &data.graph;
    let splits = Splits::classification(graph.n_nodes(), &mut rng);
    let adj = AdjView::of_graph(graph);
    println!(
        "{}: {} nodes / {} edges / homophily {:.2}",
        data.name,
        graph.n_nodes(),
        graph.n_edges(),
        graph.edge_homophily()
    );

    // --- plain GCN baseline ---
    let mut gcn = Gcn::new(graph.n_features(), 64, graph.n_classes(), &mut rng);
    let report = train_node_classifier(&mut gcn, graph, &adj, &splits, &TrainConfig::default())
        .expect("GCN training failed");
    println!("\nGCN      test accuracy: {:.2}%", 100.0 * report.test_acc);

    // --- SES on the same split ---
    let encoder = Gcn::new(graph.n_features(), 64, graph.n_classes(), &mut rng);
    let mask_gen = MaskGenerator::new(encoder.hidden_dim(), graph.n_features(), &mut rng);
    // selective feature mask for fidelity
    let config = SesConfig {
        mask_size_weight: 0.1,
        ..Default::default()
    };
    let trained = fit(encoder, mask_gen, graph, &splits, &config);
    println!(
        "SES(GCN) test accuracy: {:.2}%",
        100.0 * trained.report.test_acc
    );

    // --- explanation quality: Fidelity+ of the feature mask ---
    let fid = fidelity_plus(
        &trained.encoder,
        graph,
        &adj,
        &trained.explanations.feature_mask,
        5,
        &splits.test,
    );
    println!(
        "\nSES Fidelity+ (top-5 feature removal): {:.2}%",
        100.0 * fid
    );
    // random importance as a control
    let random_imp =
        ses::tensor::init::uniform(graph.n_nodes(), graph.n_features(), 0.0, 1.0, &mut rng);
    let fid_rand = fidelity_plus(&trained.encoder, graph, &adj, &random_imp, 5, &splits.test);
    println!(
        "random-mask Fidelity+ (control):       {:.2}%",
        100.0 * fid_rand
    );

    // --- embedding quality (Table 9 metrics) ---
    let sil = silhouette_score(&trained.embeddings, graph.labels());
    let ch = calinski_harabasz_score(&trained.embeddings, graph.labels());
    println!("\nSES embeddings: silhouette {sil:.3}, Calinski–Harabasz {ch:.1}");

    // --- a case study, Fig. 8 style ---
    let center = *splits
        .test
        .iter()
        .find(|&&v| graph.degree(v) >= 3)
        .expect("deg>=3 node");
    println!(
        "\ncase study: neighbours of node {center} (class {}):",
        graph.labels()[center]
    );
    for (u, w) in trained.explanations.ranked_neighbors(center) {
        if graph.has_edge(center, u) {
            println!(
                "  {u:4}  weight {w:.3}  class {} ({})",
                graph.labels()[u],
                if graph.labels()[u] == graph.labels()[center] {
                    "same"
                } else {
                    "different"
                }
            );
        }
    }
}
