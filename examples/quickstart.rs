//! Quickstart: train SES with a GCN backbone on the Cora stand-in, report
//! prediction accuracy, and inspect explanations for one node.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Set `SES_OBS=1 SES_OBS_FILE=out.jsonl` for per-epoch JSONL telemetry and
//! an end-of-run summary table, and `SES_QUICKSTART_EPOCHS=<n>` to shorten
//! both training phases (used by `ci.sh` for the observability smoke test).
//! See `docs/OBSERVABILITY.md`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses::core::{fit, MaskGenerator, SesConfig};
use ses::data::{realworld, Profile, Splits};
use ses::gnn::{Encoder, Gcn};

fn main() {
    let mut rng = StdRng::seed_from_u64(0);

    // 1. Load a dataset (a planted-partition stand-in matched to Cora's
    //    published statistics; see DESIGN.md).
    let data = realworld::cora_like(Profile::Fast, &mut rng);
    let graph = &data.graph;
    println!(
        "dataset {}: {} nodes, {} edges, {} features, {} classes",
        data.name,
        graph.n_nodes(),
        graph.n_edges(),
        graph.n_features(),
        graph.n_classes()
    );

    // 2. 60/20/20 split, GCN encoder, mask generator, default config.
    let splits = Splits::classification(graph.n_nodes(), &mut rng);
    let encoder = Gcn::new(graph.n_features(), 64, graph.n_classes(), &mut rng);
    let mask_gen = MaskGenerator::new(encoder.hidden_dim(), graph.n_features(), &mut rng);
    let mut config = SesConfig::default();
    if let Some(epochs) = std::env::var("SES_QUICKSTART_EPOCHS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        config.epochs_explain = epochs;
        config.epochs_epl = epochs.min(config.epochs_epl);
    }

    // 3. Fit: explainable training then enhanced predictive learning.
    let trained = fit(encoder, mask_gen, graph, &splits, &config);
    println!(
        "test accuracy: {:.2}% (after phase 1 alone: {:.2}%)",
        100.0 * trained.report.test_acc,
        100.0 * trained.report.test_acc_after_et
    );
    println!(
        "explainable training took {:?}, enhanced predictive learning {:?}",
        trained.report.explain_time, trained.report.epl_time
    );

    // 4. Explanations come for free for every node.
    let node = splits.test[0];
    println!("\nexplaining node {node} (class {}):", graph.labels()[node]);
    println!("  most important neighbours (structure mask):");
    for (u, w) in trained
        .explanations
        .ranked_neighbors(node)
        .into_iter()
        .take(5)
    {
        let same = graph.labels()[u] == graph.labels()[node];
        println!("    node {u:4}  weight {w:.3}  same class: {same}");
    }
    println!("  most important features (feature mask):");
    for (j, w) in trained.explanations.top_features(node, graph.features(), 5) {
        println!("    feature {j:4}  weight {w:.3}");
    }

    // 5. Explanation latency, SLO-style: each probed node runs as one traced
    //    request whose extract/encode/mask/rank stages feed the log-linear
    //    latency histograms (and the `explain_stage_latency` record that
    //    `ses-obs diff` compares across runs).
    let mut ses_explainer =
        ses::explain::SesExplainer::new(trained.explanations.clone(), graph.clone());
    let probe_nodes: Vec<usize> = splits.test.iter().copied().take(32).collect();
    let report = ses::explain::latency_probe(&mut ses_explainer, &probe_nodes);
    if !report.is_empty() {
        println!(
            "\nexplanation latency over {} traced requests:",
            probe_nodes.len()
        );
        println!(
            "  {:<10} {:>8} {:>12} {:>12}",
            "stage", "count", "p50_us", "p99_us"
        );
        for q in &report {
            println!(
                "  {:<10} {:>8} {:>12.1} {:>12.1}",
                q.stage,
                q.count,
                q.p50_ns as f64 / 1e3,
                q.p99_ns as f64 / 1e3
            );
        }
    }

    // 6. With SES_OBS enabled this prints the per-phase span timings, kernel
    //    counters, and histogram digests collected during the run — and
    //    flushes the Prometheus / Chrome-trace exports when
    //    `SES_OBS_PROM_FILE` / `SES_OBS_CHROME` are set.
    ses::obs::print_summary();
}
