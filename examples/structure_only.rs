//! Structure-only classification: the PolBlogs scenario, where nodes carry
//! no informative features (identity matrix input) and all signal lives in
//! the topology. Exercises the SES structure-mask path in isolation and
//! compares GCN, GAT and SES.
//!
//! ```sh
//! cargo run --release --example structure_only
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use ses::core::{fit, MaskGenerator, SesConfig, SesVariant};
use ses::data::{realworld, Profile, Splits};
use ses::gnn::{train_node_classifier, AdjView, Encoder, Gat, Gcn, TrainConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let data = realworld::polblogs_like(Profile::Fast, &mut rng);
    let graph = &data.graph;
    let splits = Splits::classification(graph.n_nodes(), &mut rng);
    let adj = AdjView::of_graph(graph);
    println!(
        "{}: {} nodes, {} edges, identity features, homophily {:.2}",
        data.name,
        graph.n_nodes(),
        graph.n_edges(),
        graph.edge_homophily()
    );

    let cfg = TrainConfig::default();
    let mut gcn = Gcn::new(graph.n_features(), 32, graph.n_classes(), &mut rng);
    let r1 =
        train_node_classifier(&mut gcn, graph, &adj, &splits, &cfg).expect("GCN training failed");
    println!("GCN  test accuracy: {:.2}%", 100.0 * r1.test_acc);

    let mut gat = Gat::new(graph.n_features(), 32, graph.n_classes(), 4, &mut rng);
    let r2 =
        train_node_classifier(&mut gat, graph, &adj, &splits, &cfg).expect("GAT training failed");
    println!("GAT  test accuracy: {:.2}%", 100.0 * r2.test_acc);

    let encoder = Gcn::new(graph.n_features(), 32, graph.n_classes(), &mut rng);
    let mask_gen = MaskGenerator::new(encoder.hidden_dim(), graph.n_features(), &mut rng);
    let ses_cfg = SesConfig::default();
    let trained = fit(encoder, mask_gen, graph, &splits, &ses_cfg);
    println!(
        "SES  test accuracy: {:.2}%",
        100.0 * trained.report.test_acc
    );

    // ablation on the spot: how much does each mask matter here?
    for (label, variant) in [
        (
            "-{M_f}",
            SesVariant {
                use_feature_mask: false,
                ..Default::default()
            },
        ),
        (
            "-{M̂_s}",
            SesVariant {
                use_structure_mask: false,
                ..Default::default()
            },
        ),
    ] {
        let mut rng2 = StdRng::seed_from_u64(3);
        let enc = Gcn::new(graph.n_features(), 32, graph.n_classes(), &mut rng2);
        let mg = MaskGenerator::new(enc.hidden_dim(), graph.n_features(), &mut rng2);
        let cfg2 = SesConfig {
            variant,
            ..Default::default()
        };
        let t = fit(enc, mg, graph, &splits, &cfg2);
        println!(
            "SES {label:8} test accuracy: {:.2}%",
            100.0 * t.report.test_acc
        );
    }

    // structural explanation: do high-weight neighbours share the blog's
    // political leaning?
    let center = splits.test[0];
    let ranked = trained.explanations.ranked_neighbors(center);
    let direct: Vec<_> = ranked
        .iter()
        .filter(|&&(u, _)| graph.has_edge(center, u))
        .take(6)
        .collect();
    println!(
        "\ntop direct neighbours of node {center} (class {}):",
        graph.labels()[center]
    );
    for &&(u, w) in &direct {
        println!("  {u:4}  weight {w:.3}  class {}", graph.labels()[u]);
    }
}
